//! Backward liveness dataflow over a function's CFG.
//!
//! Computes per-block live-in/live-out register sets. Consumers include
//! diagnostics (register pressure per block) and the move inserter's
//! reasoning about where transfer copies are worth materializing.

use mcpart_ir::{BlockId, EntityId, EntityMap, Function, Terminator, VReg};
use std::collections::BTreeSet;

/// A set of virtual registers (ordered for determinism).
pub type RegSet = BTreeSet<VReg>;

/// Per-block liveness information.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Liveness {
    /// Registers live on entry to each block.
    pub live_in: EntityMap<BlockId, RegSet>,
    /// Registers live on exit from each block.
    pub live_out: EntityMap<BlockId, RegSet>,
}

impl Liveness {
    /// Computes liveness for `func` with the standard backward
    /// fixpoint: `in[b] = use[b] ∪ (out[b] − def[b])`,
    /// `out[b] = ∪ in[succ]`.
    pub fn compute(func: &Function) -> Self {
        let n = func.blocks.len();
        // Per-block local use (read before any local write) and def sets.
        let mut uses: EntityMap<BlockId, RegSet> = EntityMap::with_default(n, RegSet::new());
        let mut defs: EntityMap<BlockId, RegSet> = EntityMap::with_default(n, RegSet::new());
        for (bid, block) in func.blocks.iter() {
            let mut local_def = RegSet::new();
            for &oid in &block.ops {
                let op = &func.ops[oid];
                for &s in &op.srcs {
                    if !local_def.contains(&s) {
                        uses[bid].insert(s);
                    }
                }
                for &d in &op.dsts {
                    local_def.insert(d);
                }
            }
            match &block.term {
                Some(Terminator::Branch { cond, .. }) if !local_def.contains(cond) => {
                    uses[bid].insert(*cond);
                }
                Some(Terminator::Return(Some(v))) if !local_def.contains(v) => {
                    uses[bid].insert(*v);
                }
                _ => {}
            }
            defs[bid] = local_def;
        }
        let mut live_in: EntityMap<BlockId, RegSet> = EntityMap::with_default(n, RegSet::new());
        let mut live_out: EntityMap<BlockId, RegSet> = EntityMap::with_default(n, RegSet::new());
        let mut changed = true;
        while changed {
            changed = false;
            // Reverse block order converges faster for forward CFGs.
            for i in (0..n).rev() {
                let bid = BlockId::new(i);
                let mut out = RegSet::new();
                for succ in func.blocks[bid].successors() {
                    out.extend(live_in[succ].iter().copied());
                }
                let mut inset = uses[bid].clone();
                for &v in &out {
                    if !defs[bid].contains(&v) {
                        inset.insert(v);
                    }
                }
                if out != live_out[bid] || inset != live_in[bid] {
                    live_out[bid] = out;
                    live_in[bid] = inset;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Maximum number of simultaneously live registers at block
    /// boundaries — a cheap register-pressure proxy.
    pub fn peak_boundary_pressure(&self) -> usize {
        self.live_in.values().chain(self.live_out.values()).map(BTreeSet::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::{Cmp, FunctionBuilder, Program};

    #[test]
    fn straight_line_liveness() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.param();
        let y = b.add(x, x);
        b.ret(Some(y));
        let f = p.entry_function();
        let lv = Liveness::compute(f);
        assert!(lv.live_in[f.entry].contains(&x));
        assert!(!lv.live_in[f.entry].contains(&y), "y defined locally");
        assert!(lv.live_out[f.entry].is_empty());
    }

    #[test]
    fn loop_carried_value_is_live_around_the_loop() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let i = b.iconst(0);
        let n = b.iconst(10);
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jump(head);
        b.switch_to(head);
        let c = b.icmp(Cmp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let one = b.iconst(1);
        let ni = b.add(i, one);
        b.mov_to(i, ni);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(i));
        let f = p.entry_function();
        let lv = Liveness::compute(f);
        // i is live into the header, the body, and the exit.
        assert!(lv.live_in[head].contains(&i));
        assert!(lv.live_in[body].contains(&i));
        assert!(lv.live_in[exit].contains(&i));
        // n is live around the loop but not into the exit.
        assert!(lv.live_in[head].contains(&n));
        assert!(!lv.live_in[exit].contains(&n));
        assert!(lv.peak_boundary_pressure() >= 2);
    }

    #[test]
    fn branch_condition_counts_as_use() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let cond = b.param();
        let t = b.block("t");
        let e = b.block("e");
        b.branch(cond, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let f = p.entry_function();
        let lv = Liveness::compute(f);
        assert!(lv.live_in[f.entry].contains(&cond));
        assert!(lv.live_out[f.entry].is_empty());
    }

    #[test]
    fn value_dead_after_last_use() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(1);
        let y = b.add(x, x); // last use of x
        let b2 = b.block("b2");
        b.jump(b2);
        b.switch_to(b2);
        b.ret(Some(y));
        let f = p.entry_function();
        let lv = Liveness::compute(f);
        assert!(!lv.live_in[b2].contains(&x));
        assert!(lv.live_in[b2].contains(&y));
        assert!(lv.live_out[f.entry].contains(&y));
    }
}
