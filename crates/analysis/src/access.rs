//! The data access relationship: which memory operations touch which
//! objects, and how often.

use crate::offsets::AddressInfo;
use crate::pointsto::{ObjectSet, PointsTo};
use mcpart_ir::{EntityMap, FuncId, ObjectId, OpId, Profile, Program};
use std::collections::HashMap;

/// A memory access site: a load, store or malloc operation in some
/// function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct AccessSite {
    /// Containing function.
    pub func: FuncId,
    /// The operation.
    pub op: OpId,
}

/// The program-wide "data access relationship graph" of §3.2: every
/// memory access operation annotated with the objects it can reach, plus
/// per-object aggregates.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AccessInfo {
    /// Objects reachable from each access site (empty points-to sets are
    /// recorded as empty, meaning "unknown/unanalyzable" — none occur in
    /// verified programs built through the IR builder).
    pub site_objects: HashMap<AccessSite, ObjectSet>,
    /// Dynamic execution frequency of each access site.
    pub site_freq: HashMap<AccessSite, u64>,
    /// All access sites per object.
    pub object_sites: EntityMap<ObjectId, Vec<AccessSite>>,
    /// Total dynamic accesses per object (a site touching several
    /// objects contributes its full frequency to each).
    pub object_freq: EntityMap<ObjectId, u64>,
    /// Constant-address information for offset-based memory
    /// disambiguation.
    pub addresses: AddressInfo,
}

impl AccessInfo {
    /// Builds the relationship from points-to results and a profile.
    pub fn compute(program: &Program, pts: &PointsTo, profile: &Profile) -> Self {
        let mut site_objects = HashMap::new();
        let mut site_freq = HashMap::new();
        let mut object_sites: EntityMap<ObjectId, Vec<AccessSite>> =
            EntityMap::with_default(program.objects.len(), Vec::new());
        let mut object_freq: EntityMap<ObjectId, u64> =
            EntityMap::with_default(program.objects.len(), 0);
        for (fid, func) in program.functions.iter() {
            for (oid, op) in func.ops.iter() {
                if !op.opcode.is_memory() {
                    continue;
                }
                let site = AccessSite { func: fid, op: oid };
                let objects = pts.memop_objects(program, fid, oid).unwrap_or_default();
                let freq = profile.op_freq(program, fid, oid);
                for &obj in &objects {
                    object_sites[obj].push(site);
                    object_freq[obj] += freq;
                }
                site_objects.insert(site, objects);
                site_freq.insert(site, freq);
            }
        }
        let addresses = AddressInfo::compute(program);
        AccessInfo { site_objects, site_freq, object_sites, object_freq, addresses }
    }

    /// All access sites, in deterministic order.
    pub fn sites(&self) -> Vec<AccessSite> {
        let mut sites: Vec<AccessSite> = self.site_objects.keys().copied().collect();
        sites.sort();
        sites
    }

    /// Number of distinct objects that are ever accessed.
    pub fn num_live_objects(&self) -> usize {
        self.object_sites.values().filter(|s| !s.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::{DataObject, FunctionBuilder, MemWidth};

    fn two_object_program() -> (Program, ObjectId, ObjectId) {
        let mut p = Program::new("t");
        let a = p.add_object(DataObject::global("a", 16));
        let b_obj = p.add_object(DataObject::global("b", 32));
        let mut b = FunctionBuilder::entry(&mut p);
        let aa = b.addrof(a);
        let ab = b.addrof(b_obj);
        let v = b.load(MemWidth::B4, aa);
        b.store(MemWidth::B4, ab, v);
        b.ret(None);
        (p, a, b_obj)
    }

    #[test]
    fn access_info_maps_sites_to_objects() {
        let (p, a, b_obj) = two_object_program();
        let pts = PointsTo::compute(&p);
        let profile = Profile::uniform(&p, 10);
        let info = AccessInfo::compute(&p, &pts, &profile);
        assert_eq!(info.sites().len(), 2);
        assert_eq!(info.object_freq[a], 10);
        assert_eq!(info.object_freq[b_obj], 10);
        assert_eq!(info.object_sites[a].len(), 1);
        assert_eq!(info.num_live_objects(), 2);
    }

    #[test]
    fn frequencies_scale_with_profile() {
        let (p, a, _) = two_object_program();
        let pts = PointsTo::compute(&p);
        let mut profile = Profile::uniform(&p, 1);
        profile.funcs[p.entry].block_freq[p.entry_function().entry] = 1000;
        let info = AccessInfo::compute(&p, &pts, &profile);
        assert_eq!(info.object_freq[a], 1000);
    }
}
