//! Constant-offset address analysis for memory disambiguation.
//!
//! Object-granular points-to sets order *all* accesses to one object,
//! which over-serializes structures (the ADPCM coder's `state.valprev`
//! at offset 0 and `state.index` at offset 4 never alias). This
//! analysis tracks, per function, which registers hold
//! `&object + constant` addresses, letting the scheduler prove that two
//! accesses with disjoint `[offset, offset+width)` ranges into the same
//! single object are independent.

use mcpart_ir::{EntityMap, FuncId, ObjectId, OpId, Opcode, Program, VReg};
use std::collections::HashMap;

/// A statically-known address: one object at a constant byte offset.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KnownAddress {
    /// The single object the address points into.
    pub object: ObjectId,
    /// Constant byte offset from the object base.
    pub offset: i64,
}

/// Per-function constant-address information for memory operations.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AddressInfo {
    /// Memory operations (loads/stores) whose address is statically a
    /// single object plus a constant offset.
    pub known: HashMap<(FuncId, OpId), KnownAddress>,
}

impl AddressInfo {
    /// Computes constant addresses with a simple forward pass per
    /// function: `addrof` seeds `(object, 0)`; adding/subtracting a
    /// single-def constant shifts the offset; `mov` copies it. Multi-def
    /// registers are excluded (their value is path-dependent).
    pub fn compute(program: &Program) -> Self {
        let mut known = HashMap::new();
        for (fid, func) in program.functions.iter() {
            let du = mcpart_ir::DefUse::compute(func);
            let single_def = |v: VReg| du.defs[v].len() == 1;
            // Per-register lattice entries (single-def registers only).
            let mut consts: EntityMap<VReg, Option<i64>> =
                EntityMap::with_default(func.num_vregs, None);
            let mut addrs: EntityMap<VReg, Option<KnownAddress>> =
                EntityMap::with_default(func.num_vregs, None);
            // Ops in id order: ids are assigned in construction order,
            // which dominates uses for single-def registers built
            // through the builder API; a second pass catches stragglers.
            for _ in 0..2 {
                for (oid, op) in func.ops.iter() {
                    let _ = oid;
                    let Some(&dst) = op.dsts.first() else { continue };
                    if !single_def(dst) {
                        continue;
                    }
                    match op.opcode {
                        Opcode::ConstInt(v) => consts[dst] = Some(v),
                        Opcode::AddrOf(object) => {
                            addrs[dst] = Some(KnownAddress { object, offset: 0 })
                        }
                        Opcode::Move => {
                            let s = op.srcs[0];
                            if single_def(s) {
                                consts[dst] = consts[s];
                                addrs[dst] = addrs[s];
                            }
                        }
                        Opcode::IntBin(mcpart_ir::IntBinOp::Add) => {
                            let (a, b) = (op.srcs[0], op.srcs[1]);
                            addrs[dst] = match (addrs[a], consts[b], addrs[b], consts[a]) {
                                (Some(ka), Some(c), _, _) => {
                                    Some(KnownAddress { object: ka.object, offset: ka.offset + c })
                                }
                                (_, _, Some(kb), Some(c)) => {
                                    Some(KnownAddress { object: kb.object, offset: kb.offset + c })
                                }
                                _ => None,
                            };
                            if let (Some(x), Some(y)) = (consts[a], consts[b]) {
                                consts[dst] = Some(x.wrapping_add(y));
                            }
                        }
                        Opcode::IntBin(mcpart_ir::IntBinOp::Sub) => {
                            if let (Some(ka), Some(c)) = (addrs[op.srcs[0]], consts[op.srcs[1]]) {
                                addrs[dst] =
                                    Some(KnownAddress { object: ka.object, offset: ka.offset - c });
                            }
                            if let (Some(x), Some(y)) = (consts[op.srcs[0]], consts[op.srcs[1]]) {
                                consts[dst] = Some(x.wrapping_sub(y));
                            }
                        }
                        _ => {}
                    }
                }
            }
            for (oid, op) in func.ops.iter() {
                let addr_reg = match op.opcode {
                    Opcode::Load(_) | Opcode::Store(_) => op.srcs[0],
                    _ => continue,
                };
                if let Some(ka) = addrs[addr_reg] {
                    known.insert((fid, oid), ka);
                }
            }
        }
        AddressInfo { known }
    }

    /// Returns `true` when the two memory operations provably access
    /// disjoint byte ranges (both addresses known, same or different
    /// objects, non-overlapping `[offset, offset+width)`).
    pub fn provably_disjoint(&self, program: &Program, func: FuncId, a: OpId, b: OpId) -> bool {
        let (Some(ka), Some(kb)) = (self.known.get(&(func, a)), self.known.get(&(func, b))) else {
            return false;
        };
        if ka.object != kb.object {
            return true;
        }
        let width = |op: OpId| -> i64 {
            match program.functions[func].ops[op].opcode {
                Opcode::Load(w) | Opcode::Store(w) => w.bytes() as i64,
                _ => 0,
            }
        };
        ka.offset + width(a) <= kb.offset || kb.offset + width(b) <= ka.offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::{DataObject, FunctionBuilder, MemWidth};

    #[test]
    fn struct_fields_are_disjoint() {
        let mut p = Program::new("t");
        let state = p.add_object(DataObject::global("state", 8));
        let mut b = FunctionBuilder::entry(&mut p);
        let base = b.addrof(state);
        let four = b.iconst(4);
        let f1 = b.add(base, four);
        let v = b.iconst(1);
        b.store(MemWidth::B4, base, v); // offset 0
        b.store(MemWidth::B4, f1, v); // offset 4
        b.ret(None);
        let info = AddressInfo::compute(&p);
        let func = p.entry_function();
        let s0 = func.blocks[func.entry].ops[4];
        let s1 = func.blocks[func.entry].ops[5];
        assert!(info.provably_disjoint(&p, p.entry, s0, s1));
        assert!(!info.provably_disjoint(&p, p.entry, s0, s0));
    }

    #[test]
    fn overlapping_ranges_are_not_disjoint() {
        let mut p = Program::new("t");
        let g = p.add_object(DataObject::global("g", 16));
        let mut b = FunctionBuilder::entry(&mut p);
        let base = b.addrof(g);
        let two = b.iconst(2);
        let mid = b.add(base, two);
        let v = b.iconst(9);
        b.store(MemWidth::B4, base, v); // [0,4)
        b.store(MemWidth::B4, mid, v); // [2,6) overlaps
        b.ret(None);
        let info = AddressInfo::compute(&p);
        let func = p.entry_function();
        let s0 = func.blocks[func.entry].ops[4];
        let s1 = func.blocks[func.entry].ops[5];
        assert!(!info.provably_disjoint(&p, p.entry, s0, s1));
    }

    #[test]
    fn dynamic_addresses_are_unknown() {
        let mut p = Program::new("t");
        let g = p.add_object(DataObject::global("g", 64));
        let mut b = FunctionBuilder::entry(&mut p);
        let i = b.param();
        let base = b.addrof(g);
        let addr = b.add(base, i); // dynamic offset
        let v = b.load(MemWidth::B4, addr);
        b.store(MemWidth::B4, base, v);
        b.ret(None);
        let info = AddressInfo::compute(&p);
        let func = p.entry_function();
        let load = func.blocks[func.entry].ops[2];
        let store = func.blocks[func.entry].ops[3];
        assert!(!info.provably_disjoint(&p, p.entry, load, store));
        // The store's address (plain addrof) *is* known.
        assert!(info.known.contains_key(&(p.entry, store)));
        assert!(!info.known.contains_key(&(p.entry, load)));
    }

    #[test]
    fn different_objects_are_disjoint() {
        let mut p = Program::new("t");
        let a = p.add_object(DataObject::global("a", 8));
        let c = p.add_object(DataObject::global("c", 8));
        let mut b = FunctionBuilder::entry(&mut p);
        let aa = b.addrof(a);
        let ac = b.addrof(c);
        let v = b.iconst(1);
        b.store(MemWidth::B4, aa, v);
        b.store(MemWidth::B4, ac, v);
        b.ret(None);
        let info = AddressInfo::compute(&p);
        let func = p.entry_function();
        let s0 = func.blocks[func.entry].ops[3];
        let s1 = func.blocks[func.entry].ops[4];
        assert!(info.provably_disjoint(&p, p.entry, s0, s1));
    }

    #[test]
    fn multi_def_registers_are_excluded() {
        let mut p = Program::new("t");
        let g = p.add_object(DataObject::global("g", 64));
        let h = p.add_object(DataObject::global("h", 64));
        let mut b = FunctionBuilder::entry(&mut p);
        let ptr = b.addrof(g);
        let other = b.addrof(h);
        b.mov_to(ptr, other); // ptr now multi-def
        let v = b.iconst(1);
        b.store(MemWidth::B4, ptr, v);
        b.ret(None);
        let info = AddressInfo::compute(&p);
        let func = p.entry_function();
        let store = func.blocks[func.entry].ops[4];
        assert!(!info.known.contains_key(&(p.entry, store)));
    }
}
