//! Call graph construction and reachability.

use mcpart_ir::{EntityMap, FuncId, Opcode, Program};

/// The static call graph of a program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CallGraph {
    /// Callees of each function (deduplicated, in call order).
    pub callees: EntityMap<FuncId, Vec<FuncId>>,
    /// Callers of each function.
    pub callers: EntityMap<FuncId, Vec<FuncId>>,
}

impl CallGraph {
    /// Builds the call graph.
    pub fn compute(program: &Program) -> Self {
        let n = program.functions.len();
        let mut callees: EntityMap<FuncId, Vec<FuncId>> = EntityMap::with_default(n, Vec::new());
        let mut callers: EntityMap<FuncId, Vec<FuncId>> = EntityMap::with_default(n, Vec::new());
        for (fid, func) in program.functions.iter() {
            for op in func.ops.values() {
                if let Opcode::Call(callee) = op.opcode {
                    if !callees[fid].contains(&callee) {
                        callees[fid].push(callee);
                    }
                    if !callers[callee].contains(&fid) {
                        callers[callee].push(fid);
                    }
                }
            }
        }
        CallGraph { callees, callers }
    }

    /// Functions reachable from the entry, in DFS preorder.
    pub fn reachable(&self, program: &Program) -> Vec<FuncId> {
        let mut visited = vec![false; program.functions.len()];
        let mut order = Vec::new();
        let mut stack = vec![program.entry];
        while let Some(f) = stack.pop() {
            if std::mem::replace(&mut visited[f.0 as usize], true) {
                continue;
            }
            order.push(f);
            for &callee in self.callees[f].iter().rev() {
                if !visited[callee.0 as usize] {
                    stack.push(callee);
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::FunctionBuilder;

    #[test]
    fn callgraph_and_reachability() {
        let mut p = Program::new("t");
        let leaf = {
            let mut b = FunctionBuilder::new_function(&mut p, "leaf");
            b.ret(None);
            b.func_id()
        };
        let unreached = {
            let mut b = FunctionBuilder::new_function(&mut p, "dead");
            b.ret(None);
            b.func_id()
        };
        let mut b = FunctionBuilder::entry(&mut p);
        b.call(leaf, vec![], 0);
        b.call(leaf, vec![], 0);
        b.ret(None);
        let cg = CallGraph::compute(&p);
        assert_eq!(cg.callees[p.entry], vec![leaf]);
        assert_eq!(cg.callers[leaf], vec![p.entry]);
        let reach = cg.reachable(&p);
        assert!(reach.contains(&leaf));
        assert!(!reach.contains(&unreached));
        assert_eq!(reach[0], p.entry);
    }
}
