//! # mcpart-analysis — prepartitioning program analyses
//!
//! The analyses the paper runs before partitioning (§3.2):
//!
//! * [`PointsTo`] — interprocedural, flow-insensitive points-to analysis
//!   assigning each load/store the set of data objects it can access and
//!   relating `malloc()` call sites to accesses on their heap data;
//! * [`AccessInfo`] — the data access relationship graph between memory
//!   access operations and objects, weighted by profile frequency;
//! * [`CallGraph`] — static call graph and entry reachability;
//! * [`Dominators`]/[`LoopForest`] — dominator tree and natural-loop
//!   detection, used to form loop-nest partitioning regions.
//!
//! ```
//! use mcpart_ir::{Program, DataObject, FunctionBuilder, MemWidth, Profile};
//! use mcpart_analysis::{PointsTo, AccessInfo};
//!
//! let mut program = Program::new("demo");
//! let table = program.add_object(DataObject::global("table", 64));
//! let mut b = FunctionBuilder::entry(&mut program);
//! let addr = b.addrof(table);
//! let v = b.load(MemWidth::B4, addr);
//! b.ret(Some(v));
//!
//! let pts = PointsTo::compute(&program);
//! let info = AccessInfo::compute(&program, &pts, &Profile::uniform(&program, 100));
//! assert_eq!(info.object_freq[table], 100);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![warn(missing_docs)]

mod access;
mod callgraph;
mod error;
mod liveness;
mod loops;
mod offsets;
mod pointsto;

pub use access::{AccessInfo, AccessSite};
pub use callgraph::CallGraph;
pub use error::{validate_profile, AnalysisError};
pub use liveness::{Liveness, RegSet};
pub use loops::{loop_regions, Dominators, LoopForest, NaturalLoop};
pub use offsets::{AddressInfo, KnownAddress};
pub use pointsto::{ObjectSet, PointsTo};
