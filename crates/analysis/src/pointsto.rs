//! Interprocedural, flow-insensitive points-to analysis.
//!
//! The paper uses summary-based context-sensitive pointer analysis
//! (Nystrom et al.) to map each load/store to the data objects it can
//! access and to relate `malloc()` call sites to the accesses on their
//! heap data. We implement a whole-program Andersen-style analysis that
//! is field-insensitive and context-insensitive — sound and precise
//! enough for the access-pattern merging of the first pass, since our IR
//! programs are far smaller than full C applications.
//!
//! Abstract domain: every virtual register holds a set of [`ObjectId`]s
//! it may point into; every object has a points-to summary for pointer
//! values stored *into* it. Address arithmetic preserves the base
//! object.

use mcpart_ir::{EntityMap, FuncId, ObjectId, OpId, Opcode, Program, VReg};
use std::collections::BTreeSet;

/// A set of data objects, ordered for determinism.
pub type ObjectSet = BTreeSet<ObjectId>;

/// Result of the points-to analysis.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PointsTo {
    /// Per-function, per-register points-to sets.
    pub vreg_sets: EntityMap<FuncId, EntityMap<VReg, ObjectSet>>,
    /// Pointer values that may be stored inside each object
    /// (field-insensitive heap summary).
    pub object_contents: EntityMap<ObjectId, ObjectSet>,
}

impl PointsTo {
    /// Computes points-to sets for the whole program by iterating the
    /// transfer rules to a fixpoint.
    pub fn compute(program: &Program) -> Self {
        let mut vreg_sets: EntityMap<FuncId, EntityMap<VReg, ObjectSet>> = program
            .functions
            .values()
            .map(|f| EntityMap::with_default(f.num_vregs, ObjectSet::new()))
            .collect();
        let mut object_contents: EntityMap<ObjectId, ObjectSet> =
            EntityMap::with_default(program.objects.len(), ObjectSet::new());

        let mut changed = true;
        while changed {
            changed = false;
            for (fid, func) in program.functions.iter() {
                for op in func.ops.values() {
                    match op.opcode {
                        Opcode::AddrOf(obj) | Opcode::Malloc(obj) => {
                            changed |= vreg_sets[fid][op.dsts[0]].insert(obj);
                        }
                        Opcode::Load(_) => {
                            // dst may hold any pointer stored in any
                            // object the address points into.
                            let addr_set = vreg_sets[fid][op.srcs[0]].clone();
                            let mut incoming = ObjectSet::new();
                            for obj in addr_set {
                                incoming.extend(object_contents[obj].iter().copied());
                            }
                            changed |= union_into(&mut vreg_sets[fid][op.dsts[0]], &incoming);
                        }
                        Opcode::Store(_) => {
                            let addr_set = vreg_sets[fid][op.srcs[0]].clone();
                            let val_set = vreg_sets[fid][op.srcs[1]].clone();
                            if !val_set.is_empty() {
                                for obj in addr_set {
                                    changed |= union_into(&mut object_contents[obj], &val_set);
                                }
                            }
                        }
                        Opcode::Call(callee) => {
                            // Args flow into parameters.
                            let params = program.functions[callee].params.clone();
                            for (&arg, &param) in op.srcs.iter().zip(params.iter()) {
                                let s = vreg_sets[fid][arg].clone();
                                changed |= union_into(&mut vreg_sets[callee][param], &s);
                            }
                            // Return values flow back into destinations.
                            let mut ret_set = ObjectSet::new();
                            for block in program.functions[callee].blocks.values() {
                                if let Some(mcpart_ir::Terminator::Return(Some(v))) = &block.term {
                                    ret_set.extend(vreg_sets[callee][*v].iter().copied());
                                }
                            }
                            for &dst in &op.dsts {
                                changed |= union_into(&mut vreg_sets[fid][dst], &ret_set);
                            }
                        }
                        // Everything else: pointers survive arithmetic,
                        // moves and selects (base-object preservation).
                        _ => {
                            if op.dsts.len() == 1 {
                                let mut incoming = ObjectSet::new();
                                for &s in &op.srcs {
                                    incoming.extend(vreg_sets[fid][s].iter().copied());
                                }
                                if !incoming.is_empty() {
                                    changed |=
                                        union_into(&mut vreg_sets[fid][op.dsts[0]], &incoming);
                                }
                            }
                        }
                    }
                }
            }
        }
        PointsTo { vreg_sets, object_contents }
    }

    /// Objects a memory operation can access: the points-to set of its
    /// address operand for loads/stores, the allocation site itself for
    /// mallocs, and `None` for non-memory operations.
    pub fn memop_objects(&self, program: &Program, func: FuncId, op: OpId) -> Option<ObjectSet> {
        let operation = &program.functions[func].ops[op];
        match operation.opcode {
            Opcode::Load(_) | Opcode::Store(_) => {
                Some(self.vreg_sets[func][operation.srcs[0]].clone())
            }
            Opcode::Malloc(site) => Some(ObjectSet::from([site])),
            _ => None,
        }
    }
}

fn union_into(dst: &mut ObjectSet, src: &ObjectSet) -> bool {
    let before = dst.len();
    dst.extend(src.iter().copied());
    dst.len() != before
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::{Cmp, DataObject, FunctionBuilder, MemWidth};

    /// Reconstructs the paper's Figure 4: a pointer `foo` set to either
    /// heap data `x` or global `value1` depending on a condition, then
    /// dereferenced.
    fn figure4_program() -> (Program, ObjectId, ObjectId, ObjectId) {
        let mut p = Program::new("fig4");
        let heap_x = p.add_object(DataObject::heap_site("x"));
        let value1 = p.add_object(DataObject::global("value1", 4));
        let value2 = p.add_object(DataObject::global("value2", 4));
        let mut b = FunctionBuilder::entry(&mut p);
        let cond = b.param();
        // BB1: x = malloc(40)
        let size = b.iconst(40);
        let x = b.malloc(heap_x, size);
        // y points to value1
        let y = b.addrof(value1);
        let foo = b.mov(x); // foo = x (will be overwritten on one path)
        let bb3 = b.block("bb3");
        let bb4 = b.block("bb4");
        let zero = b.iconst(0);
        let c = b.icmp(Cmp::Ne, cond, zero);
        b.branch(c, bb3, bb4);
        // BB3: store/load through y, foo = y
        b.switch_to(bb3);
        let v = b.load(MemWidth::B4, y);
        b.store(MemWidth::B4, y, v);
        b.mov_to(foo, y);
        b.jump(bb4);
        // BB4: load through foo (either x or value1); also touch value2
        b.switch_to(bb4);
        let loaded = b.load(MemWidth::B4, foo);
        let v2 = b.addrof(value2);
        b.store(MemWidth::B4, v2, loaded);
        b.ret(None);
        (p, heap_x, value1, value2)
    }

    #[test]
    fn figure4_load_sees_both_targets() {
        let (p, heap_x, value1, value2) = figure4_program();
        mcpart_ir::verify_program(&p).unwrap();
        let pts = PointsTo::compute(&p);
        let main = p.entry;
        // Find the load in bb4 (the one whose address is foo).
        let func = &p.functions[main];
        let mut found = false;
        for (oid, op) in func.ops.iter() {
            if op.opcode.is_load() {
                let objs = pts.memop_objects(&p, main, oid).unwrap();
                if objs.len() == 2 {
                    assert!(objs.contains(&heap_x));
                    assert!(objs.contains(&value1));
                    assert!(!objs.contains(&value2));
                    found = true;
                }
            }
        }
        assert!(found, "no load with the merged {{x, value1}} set");
    }

    #[test]
    fn malloc_points_to_its_site() {
        let mut p = Program::new("t");
        let site = p.add_object(DataObject::heap_site("buf"));
        let mut b = FunctionBuilder::entry(&mut p);
        let n = b.iconst(100);
        let ptr = b.malloc(site, n);
        let v = b.load(MemWidth::B4, ptr);
        b.ret(Some(v));
        let pts = PointsTo::compute(&p);
        assert_eq!(pts.vreg_sets[p.entry][ptr], ObjectSet::from([site]));
    }

    #[test]
    fn pointer_arithmetic_preserves_base() {
        let mut p = Program::new("t");
        let g = p.add_object(DataObject::global("arr", 400));
        let mut b = FunctionBuilder::entry(&mut p);
        let base = b.addrof(g);
        let i = b.iconst(4);
        let addr = b.add(base, i);
        let addr2 = b.shl(addr, i);
        let v = b.load(MemWidth::B4, addr2);
        b.ret(Some(v));
        let pts = PointsTo::compute(&p);
        assert!(pts.vreg_sets[p.entry][addr2].contains(&g));
    }

    #[test]
    fn stored_pointers_flow_through_memory() {
        let mut p = Program::new("t");
        let slot = p.add_object(DataObject::global("slot", 8));
        let target = p.add_object(DataObject::global("target", 4));
        let mut b = FunctionBuilder::entry(&mut p);
        let sa = b.addrof(slot);
        let ta = b.addrof(target);
        b.store(MemWidth::B8, sa, ta); // slot <- &target
        let loaded = b.load(MemWidth::B8, sa); // loaded = *slot
        let v = b.load(MemWidth::B4, loaded); // v = *loaded
        b.ret(Some(v));
        let pts = PointsTo::compute(&p);
        assert!(pts.vreg_sets[p.entry][loaded].contains(&target));
        assert!(pts.object_contents[slot].contains(&target));
        // The final load accesses `target`.
        let func = &p.functions[p.entry];
        let last_load = func.ops.iter().filter(|(_, op)| op.opcode.is_load()).last().unwrap().0;
        let objs = pts.memop_objects(&p, p.entry, last_load).unwrap();
        assert_eq!(objs, ObjectSet::from([target]));
    }

    #[test]
    fn pointers_cross_calls() {
        let mut p = Program::new("t");
        let g = p.add_object(DataObject::global("g", 4));
        let callee = {
            let mut cb = FunctionBuilder::new_function(&mut p, "deref");
            let ptr = cb.param();
            let v = cb.load(MemWidth::B4, ptr);
            cb.ret(Some(v));
            cb.func_id()
        };
        let mut b = FunctionBuilder::entry(&mut p);
        let a = b.addrof(g);
        let r = b.call(callee, vec![a], 1);
        b.ret(Some(r[0]));
        mcpart_ir::verify_program(&p).unwrap();
        let pts = PointsTo::compute(&p);
        let load = p.functions[callee].ops.iter().find(|(_, op)| op.opcode.is_load()).unwrap().0;
        let objs = pts.memop_objects(&p, callee, load).unwrap();
        assert_eq!(objs, ObjectSet::from([g]));
    }

    #[test]
    fn returned_pointers_flow_back() {
        let mut p = Program::new("t");
        let g = p.add_object(DataObject::global("g", 4));
        let callee = {
            let mut cb = FunctionBuilder::new_function(&mut p, "get");
            let a = cb.addrof(g);
            cb.ret(Some(a));
            cb.func_id()
        };
        let mut b = FunctionBuilder::entry(&mut p);
        let r = b.call(callee, vec![], 1);
        let v = b.load(MemWidth::B4, r[0]);
        b.ret(Some(v));
        let pts = PointsTo::compute(&p);
        assert!(pts.vreg_sets[p.entry][r[0]].contains(&g));
    }
}
