//! Dominators and natural-loop detection.
//!
//! Used to form loop-nest regions for the computation partitioner
//! (RHOP's regions in the paper are compiler-formed loop/hyperblock
//! regions) and generally useful CFG analyses.

use mcpart_ir::{BlockId, EntityId, EntityMap, Function};

/// Immediate-dominator tree of a function's CFG, computed with the
/// Cooper–Harvey–Kennedy iterative algorithm over a reverse postorder.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Dominators {
    /// Immediate dominator per block (`None` for the entry and for
    /// unreachable blocks).
    pub idom: EntityMap<BlockId, Option<BlockId>>,
    /// Reverse postorder of reachable blocks.
    pub rpo: Vec<BlockId>,
}

impl Dominators {
    /// Computes the dominator tree.
    pub fn compute(func: &Function) -> Self {
        let n = func.blocks.len();
        // Postorder DFS from entry.
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        let mut stack: Vec<(BlockId, usize)> = vec![(func.entry, 0)];
        state[func.entry.index()] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = func.blocks[b].successors();
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.iter().rev().copied().collect();
        let mut rpo_index: EntityMap<BlockId, usize> = EntityMap::with_default(n, usize::MAX);
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b] = i;
        }
        // Predecessors (reachable only).
        let mut preds: EntityMap<BlockId, Vec<BlockId>> = EntityMap::with_default(n, Vec::new());
        for &b in &rpo {
            for s in func.blocks[b].successors() {
                preds[s].push(b);
            }
        }
        let mut idom: EntityMap<BlockId, Option<BlockId>> = EntityMap::with_default(n, None);
        idom[func.entry] = Some(func.entry);
        let intersect = |idom: &EntityMap<BlockId, Option<BlockId>>,
                         rpo_index: &EntityMap<BlockId, usize>,
                         mut a: BlockId,
                         mut b: BlockId| {
            while a != b {
                while rpo_index[a] > rpo_index[b] {
                    a = idom[a].expect("processed");
                }
                while rpo_index[b] > rpo_index[a] {
                    b = idom[b].expect("processed");
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                if b == func.entry {
                    continue;
                }
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b] {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        // The entry's self-idom is an implementation artifact; expose None.
        idom[func.entry] = None;
        Dominators { idom, rpo }
    }

    /// Returns `true` if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }
}

/// A natural loop: a back edge `tail → header` where the header
/// dominates the tail, plus all blocks that reach the tail without
/// passing through the header.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NaturalLoop {
    /// The loop header.
    pub header: BlockId,
    /// All member blocks (header first, rest in discovery order).
    pub blocks: Vec<BlockId>,
}

/// All natural loops of a function, with innermost-loop membership.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LoopForest {
    /// Loops, outer loops before the inner loops they contain.
    pub loops: Vec<NaturalLoop>,
}

impl LoopForest {
    /// Detects natural loops (loops sharing a header are merged).
    pub fn compute(func: &Function) -> Self {
        let dom = Dominators::compute(func);
        let n = func.blocks.len();
        let mut preds: EntityMap<BlockId, Vec<BlockId>> = EntityMap::with_default(n, Vec::new());
        for &b in &dom.rpo {
            for s in func.blocks[b].successors() {
                preds[s].push(b);
            }
        }
        let mut loops: Vec<NaturalLoop> = Vec::new();
        for &tail in &dom.rpo {
            for header in func.blocks[tail].successors() {
                if !dom.dominates(header, tail) {
                    continue;
                }
                // Collect the loop body by walking predecessors from the
                // tail until the header.
                let mut body = vec![header];
                let mut work = vec![tail];
                while let Some(b) = work.pop() {
                    if body.contains(&b) {
                        continue;
                    }
                    body.push(b);
                    for &p in &preds[b] {
                        work.push(p);
                    }
                }
                if let Some(existing) = loops.iter_mut().find(|l| l.header == header) {
                    for b in body {
                        if !existing.blocks.contains(&b) {
                            existing.blocks.push(b);
                        }
                    }
                } else {
                    loops.push(NaturalLoop { header, blocks: body });
                }
            }
        }
        // Order outer-first (more blocks first as a simple proxy, then
        // by header id for determinism).
        loops.sort_by_key(|l| (std::cmp::Reverse(l.blocks.len()), l.header));
        LoopForest { loops }
    }

    /// Outermost loops only: loops not contained in any other loop.
    pub fn outermost(&self) -> Vec<&NaturalLoop> {
        self.loops
            .iter()
            .filter(|l| {
                !self.loops.iter().any(|o| o.header != l.header && o.blocks.contains(&l.header))
            })
            .collect()
    }
}

/// Region decomposition for the computation partitioner: one region per
/// outermost loop (covering the whole nest), and one per remaining
/// block. Every block appears exactly once.
pub fn loop_regions(func: &Function) -> Vec<Vec<BlockId>> {
    let forest = LoopForest::compute(func);
    let mut covered = vec![false; func.blocks.len()];
    let mut regions: Vec<Vec<BlockId>> = Vec::new();
    for l in forest.outermost() {
        let mut blocks: Vec<BlockId> = l.blocks.clone();
        blocks.sort();
        blocks.retain(|&b| !std::mem::replace(&mut covered[b.index()], true));
        if !blocks.is_empty() {
            regions.push(blocks);
        }
    }
    for (b, _) in func.blocks.iter() {
        if !covered[b.index()] {
            regions.push(vec![b]);
        }
    }
    // Deterministic order: by first block id.
    regions.sort_by_key(|r| r[0]);
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::{Cmp, FunctionBuilder, Program};

    /// entry -> head <-> body, head -> exit.
    fn simple_loop() -> (Program, BlockId, BlockId, BlockId) {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let i = b.iconst(0);
        let n = b.iconst(10);
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jump(head);
        b.switch_to(head);
        let c = b.icmp(Cmp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let one = b.iconst(1);
        let next = b.add(i, one);
        b.mov_to(i, next);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        (p, head, body, exit)
    }

    #[test]
    fn dominators_of_simple_loop() {
        let (p, head, body, exit) = simple_loop();
        let f = p.entry_function();
        let dom = Dominators::compute(f);
        assert_eq!(dom.idom[head], Some(f.entry));
        assert_eq!(dom.idom[body], Some(head));
        assert_eq!(dom.idom[exit], Some(head));
        assert!(dom.dominates(f.entry, exit));
        assert!(dom.dominates(head, body));
        assert!(!dom.dominates(body, exit));
        assert!(dom.dominates(body, body), "dominance is reflexive");
    }

    #[test]
    fn natural_loop_detected() {
        let (p, head, body, exit) = simple_loop();
        let forest = LoopForest::compute(p.entry_function());
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.header, head);
        assert!(l.blocks.contains(&body));
        assert!(!l.blocks.contains(&exit));
    }

    #[test]
    fn loop_regions_cover_all_blocks_once() {
        let (p, ..) = simple_loop();
        let f = p.entry_function();
        let regions = loop_regions(f);
        let mut seen = std::collections::HashSet::new();
        for r in &regions {
            for &b in r {
                assert!(seen.insert(b), "{b} in two regions");
            }
        }
        assert_eq!(seen.len(), f.blocks.len());
        // The loop (head + body) forms one region.
        assert!(regions.iter().any(|r| r.len() == 2));
    }

    #[test]
    fn nested_loops_form_one_outer_region() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let i = b.iconst(0);
        let n = b.iconst(4);
        let ohead = b.block("ohead");
        let obody = b.block("obody");
        let ihead = b.block("ihead");
        let ibody = b.block("ibody");
        let olatch = b.block("olatch");
        let exit = b.block("exit");
        b.jump(ohead);
        b.switch_to(ohead);
        let c = b.icmp(Cmp::Lt, i, n);
        b.branch(c, obody, exit);
        b.switch_to(obody);
        let j = b.iconst(0);
        b.jump(ihead);
        b.switch_to(ihead);
        let cj = b.icmp(Cmp::Lt, j, n);
        b.branch(cj, ibody, olatch);
        b.switch_to(ibody);
        let one = b.iconst(1);
        let nj = b.add(j, one);
        b.mov_to(j, nj);
        b.jump(ihead);
        b.switch_to(olatch);
        let one2 = b.iconst(1);
        let ni = b.add(i, one2);
        b.mov_to(i, ni);
        b.jump(ohead);
        b.switch_to(exit);
        b.ret(None);
        mcpart_ir::verify_program(&p).unwrap();
        let f = p.entry_function();
        let forest = LoopForest::compute(f);
        assert_eq!(forest.loops.len(), 2, "outer and inner loop");
        let outer = forest.outermost();
        assert_eq!(outer.len(), 1, "inner loop nests inside outer");
        assert_eq!(outer[0].header, ohead);
        // Regions: one 5-block nest + entry + exit singletons.
        let regions = loop_regions(f);
        assert!(regions.iter().any(|r| r.len() == 5), "{regions:?}");
        assert_eq!(regions.iter().map(Vec::len).sum::<usize>(), f.blocks.len());
    }

    #[test]
    fn loop_free_function_has_singleton_regions() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let next = b.block("next");
        b.jump(next);
        b.switch_to(next);
        b.ret(None);
        let regions = loop_regions(p.entry_function());
        assert_eq!(regions.len(), 2);
        assert!(regions.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let dead = b.block("dead");
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let dom = Dominators::compute(p.entry_function());
        assert_eq!(dom.idom[dead], None);
        assert!(!dom.rpo.contains(&dead));
    }
}
