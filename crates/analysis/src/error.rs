//! Typed analysis-input failures.

use mcpart_ir::{Profile, Program};
use std::error::Error;
use std::fmt;

/// A failure to run the prepartitioning analyses, always caused by
/// inputs that do not fit together (the analyses themselves are total
/// on well-formed inputs).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AnalysisError {
    /// The profile's shape does not match the program: wrong function
    /// count, wrong per-function block count, or wrong heap-site count.
    ProfileMismatch {
        /// What does not line up.
        message: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::ProfileMismatch { message } => {
                write!(f, "profile does not match program: {message}")
            }
        }
    }
}

impl Error for AnalysisError {}

/// Checks that `profile` is indexable by every block and heap site of
/// `program` — the precondition of [`crate::AccessInfo::compute`] and
/// of everything downstream that weighs operations by frequency.
///
/// # Errors
///
/// Returns [`AnalysisError::ProfileMismatch`] naming the first
/// mismatching dimension.
pub fn validate_profile(program: &Program, profile: &Profile) -> Result<(), AnalysisError> {
    if profile.funcs.len() != program.functions.len() {
        return Err(AnalysisError::ProfileMismatch {
            message: format!(
                "profile covers {} functions, program has {}",
                profile.funcs.len(),
                program.functions.len()
            ),
        });
    }
    for (fid, func) in program.functions.iter() {
        let fp = &profile.funcs[fid];
        if fp.block_freq.len() != func.blocks.len() {
            return Err(AnalysisError::ProfileMismatch {
                message: format!(
                    "profile covers {} blocks in {fid} ({}), function has {}",
                    fp.block_freq.len(),
                    func.name,
                    func.blocks.len()
                ),
            });
        }
    }
    if profile.heap_bytes.len() != program.objects.len() {
        return Err(AnalysisError::ProfileMismatch {
            message: format!(
                "profile sizes {} heap sites, program has {} objects",
                profile.heap_bytes.len(),
                program.objects.len()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::{FunctionBuilder, Program};

    fn program() -> Program {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        b.ret(None);
        p
    }

    #[test]
    fn matching_profile_validates() {
        let p = program();
        validate_profile(&p, &Profile::uniform(&p, 1)).expect("matches");
    }

    #[test]
    fn truncated_block_freq_rejected() {
        let mut p = program();
        let prof = Profile::uniform(&p, 1);
        p.functions[p.entry].add_block("extra");
        let e = validate_profile(&p, &prof).unwrap_err();
        assert!(e.to_string().contains("blocks"), "{e}");
    }

    #[test]
    fn wrong_function_count_rejected() {
        let p = program();
        let mut prof = Profile::uniform(&p, 1);
        prof.funcs = mcpart_ir::EntityMap::new();
        let e = validate_profile(&p, &prof).unwrap_err();
        assert!(e.to_string().contains("function"), "{e}");
    }

    #[test]
    fn wrong_heap_site_count_rejected() {
        let mut p = program();
        let prof = Profile::uniform(&p, 1);
        p.add_object(mcpart_ir::DataObject::global("g", 8));
        let e = validate_profile(&p, &prof).unwrap_err();
        assert!(e.to_string().contains("heap"), "{e}");
    }
}
