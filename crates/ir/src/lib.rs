//! # mcpart-ir — compiler IR for multicluster data/computation partitioning
//!
//! This crate defines the intermediate representation shared by every
//! other crate in the `mcpart` workspace, a reproduction of Chu & Mahlke,
//! *Compiler-directed Data Partitioning for Multicluster Processors*
//! (CGO 2006).
//!
//! The IR is a register-based, non-SSA representation close to
//! Trimaran's Elcor IR at the point where the paper's partitioners run:
//!
//! * [`Program`] — functions plus a table of [`DataObject`]s (static
//!   globals and `malloc` call sites), the entities the *data*
//!   partitioner distributes across cluster memories;
//! * [`Function`] — a CFG of [`Block`]s over an operation arena, with an
//!   optional [`Region`] decomposition used by the region-based
//!   *computation* partitioner;
//! * [`Op`]/[`Opcode`] — operations with explicit virtual-register
//!   operands; constants are materialized so every data dependence is a
//!   register edge;
//! * [`Profile`] — block execution frequencies and heap-site sizes.
//!
//! ## Example
//!
//! ```
//! use mcpart_ir::{Program, DataObject, FunctionBuilder, MemWidth, verify_program};
//!
//! let mut program = Program::new("quickstart");
//! let table = program.add_object(DataObject::global("table", 128));
//! let mut b = FunctionBuilder::entry(&mut program);
//! let base = b.addrof(table);
//! let v = b.load(MemWidth::B4, base);
//! let doubled = b.add(v, v);
//! b.store(MemWidth::B4, base, doubled);
//! b.ret(None);
//! verify_program(&program)?;
//! # Ok::<(), mcpart_ir::VerifyError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![warn(missing_docs)]

mod block;
mod builder;
mod dfg;
mod func;
mod ids;
mod object;
mod op;
mod opcode;
mod parse;
mod print;
mod profile;
mod program;
mod transform;
mod verify;

pub use block::{Block, Terminator};
pub use builder::FunctionBuilder;
pub use dfg::DefUse;
pub use func::{Function, Region};
pub use ids::{BlockId, ClusterId, EntityId, EntityMap, FuncId, ObjectId, OpId, RegionId, VReg};
pub use object::{DataObject, ObjectKind};
pub use op::{Op, OpRef};
pub use opcode::{Cmp, FloatBinOp, FuKind, IntBinOp, MemWidth, Opcode};
pub use parse::{parse_program, ParseError};
pub use print::{function_to_string, program_to_string};
pub use profile::{FuncProfile, Profile};
pub use program::Program;
pub use transform::{
    copy_propagation, dce_function, fold_constants, lvn_function, optimize, OptStats,
};
pub use verify::{verify_program, VerifyError};
