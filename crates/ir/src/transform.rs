//! Classic scalar optimizations over the IR: dead-code elimination,
//! local value numbering (CSE), copy propagation and constant folding.
//!
//! These run *before* partitioning (they know nothing about clusters)
//! and are optional: the reproduction's workload generators emit
//! somewhat redundant straight-line code (repeated constants, address
//! recomputation), and these passes bring it to the level a production
//! frontend would hand the partitioner.

use crate::block::Terminator;
use crate::dfg::DefUse;
use crate::func::Function;
use crate::ids::{EntityId, EntityMap, OpId, VReg};
use crate::op::Op;
use crate::opcode::{Cmp, IntBinOp, Opcode};
use crate::program::Program;
use std::collections::HashMap;

/// Counters from one [`optimize`] run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OptStats {
    /// Operations removed as dead.
    pub dce_removed: usize,
    /// Uses redirected by local value numbering.
    pub cse_hits: usize,
    /// Copies propagated away.
    pub copies_propagated: usize,
    /// Operations folded to constants.
    pub constants_folded: usize,
    /// Pass rounds executed.
    pub rounds: usize,
}

impl OptStats {
    fn changed(&self, before: &OptStats) -> bool {
        self.dce_removed != before.dce_removed
            || self.cse_hits != before.cse_hits
            || self.copies_propagated != before.copies_propagated
            || self.constants_folded != before.constants_folded
    }
}

/// Returns `true` if removing this op (when its results are unused)
/// cannot change program behaviour.
fn is_pure(opcode: Opcode) -> bool {
    match opcode {
        Opcode::ConstInt(_)
        | Opcode::ConstFloat(_)
        | Opcode::AddrOf(_)
        | Opcode::IntBin(_)
        | Opcode::IntCmp(_)
        | Opcode::Select
        | Opcode::FloatBin(_)
        | Opcode::FloatCmp(_)
        | Opcode::IntToFloat
        | Opcode::FloatToInt
        | Opcode::Move => true,
        // Loads are pure w.r.t. memory but can trap on bad addresses in
        // the simulator; a dead load in a verified program has a valid
        // address, so removing it is safe.
        Opcode::Load(_) => true,
        Opcode::Store(_)
        | Opcode::Malloc(_)
        | Opcode::BranchCond
        | Opcode::Jump
        | Opcode::Call(_)
        | Opcode::Ret => false,
    }
}

/// Dead-code elimination for one function. Removes pure operations none
/// of whose results are used (transitively, via a worklist). Returns
/// the number of removed operations.
pub fn dce_function(func: &mut Function) -> usize {
    let mut total = 0usize;
    loop {
        let mut used: Vec<bool> = vec![false; func.num_vregs];
        for op in func.ops.values() {
            for &s in &op.srcs {
                used[s.index()] = true;
            }
        }
        for block in func.blocks.values() {
            match &block.term {
                Some(Terminator::Branch { cond, .. }) => used[cond.index()] = true,
                Some(Terminator::Return(Some(v))) => used[v.index()] = true,
                _ => {}
            }
        }
        let mut dead: Vec<OpId> = Vec::new();
        for (oid, op) in func.ops.iter() {
            if !is_pure(op.opcode) {
                continue;
            }
            if op.dsts.iter().all(|d| !used[d.index()]) && !op.dsts.is_empty() {
                // Multi-def registers: removing one definition changes
                // which value later uses observe only if uses exist;
                // there are none (checked above), so removal is safe.
                dead.push(oid);
            }
        }
        if dead.is_empty() {
            return total;
        }
        // Removing ops may free up their operands; iterate to a
        // fixpoint.
        total += rebuild_without(func, &dead);
    }
}

/// Rebuilds the function's op arena without the listed ops, preserving
/// relative order and re-densifying ids. Returns how many were removed.
fn rebuild_without(func: &mut Function, dead: &[OpId]) -> usize {
    if dead.is_empty() {
        return 0;
    }
    let dead_set: std::collections::HashSet<OpId> = dead.iter().copied().collect();
    let mut remap: EntityMap<OpId, Option<OpId>> = EntityMap::with_default(func.ops.len(), None);
    let mut new_ops: EntityMap<OpId, Op> = EntityMap::new();
    for (oid, op) in func.ops.iter() {
        if !dead_set.contains(&oid) {
            let nid = new_ops.push(op.clone());
            remap[oid] = Some(nid);
        }
    }
    for block in func.blocks.values_mut() {
        block.ops = block.ops.iter().filter_map(|o| remap[*o]).collect();
    }
    func.ops = new_ops;
    dead_set.len()
}

/// A canonical key for pure expressions (commutative ops sorted).
fn value_key(op: &Op, binding: &HashMap<VReg, VReg>) -> Option<(Opcode, Vec<VReg>)> {
    if !is_pure(op.opcode) || matches!(op.opcode, Opcode::Load(_)) || op.dsts.len() != 1 {
        return None;
    }
    let resolve = |v: VReg| binding.get(&v).copied().unwrap_or(v);
    let mut srcs: Vec<VReg> = op.srcs.iter().map(|&s| resolve(s)).collect();
    let commutative = matches!(
        op.opcode,
        Opcode::IntBin(
            IntBinOp::Add
                | IntBinOp::Mul
                | IntBinOp::And
                | IntBinOp::Or
                | IntBinOp::Xor
                | IntBinOp::Min
                | IntBinOp::Max
        ) | Opcode::IntCmp(Cmp::Eq | Cmp::Ne)
    );
    if commutative {
        srcs.sort();
    }
    Some((op.opcode, srcs))
}

/// Local value numbering: within each block, a pure operation whose
/// (opcode, canonical operands) was already computed — with no
/// intervening redefinition — has its uses redirected to the earlier
/// result. Returns the number of redirected operations.
pub fn lvn_function(func: &mut Function) -> usize {
    let mut hits = 0usize;
    let block_ids: Vec<_> = func.blocks.keys().collect();
    for bid in block_ids {
        let op_ids = func.blocks[bid].ops.clone();
        // representative binding for registers within this block
        let mut binding: HashMap<VReg, VReg> = HashMap::new();
        let mut table: HashMap<(Opcode, Vec<VReg>), VReg> = HashMap::new();
        for oid in op_ids {
            // Rewrite sources through current bindings first.
            let resolved: Vec<VReg> =
                func.ops[oid].srcs.iter().map(|s| binding.get(s).copied().unwrap_or(*s)).collect();
            func.ops[oid].srcs = resolved;
            let op = func.ops[oid].clone();
            // Any definition invalidates bindings and expressions
            // involving the redefined registers — before the new value
            // is (possibly) entered into the table.
            for &d in &op.dsts {
                binding.remove(&d);
                table.retain(|(_, srcs), rep| !srcs.contains(&d) && *rep != d);
            }
            if let Some(key) = value_key(&op, &HashMap::new()) {
                let dst = op.dsts[0];
                if let Some(&rep) = table.get(&key) {
                    // Later uses of dst read the representative instead.
                    binding.insert(dst, rep);
                    hits += 1;
                } else {
                    table.insert(key, dst);
                }
            }
        }
        // Terminator condition/value also read through bindings.
        if let Some(term) = &mut func.blocks[bid].term {
            match term {
                Terminator::Branch { cond, .. } => {
                    if let Some(&rep) = binding.get(cond) {
                        *cond = rep;
                    }
                }
                Terminator::Return(Some(v)) => {
                    if let Some(&rep) = binding.get(v) {
                        *v = rep;
                    }
                }
                _ => {}
            }
        }
    }
    hits
}

/// Copy propagation: uses of `t` where `t = mov s` (both single-def)
/// are redirected to `s`. Returns the number of redirected copies.
pub fn copy_propagation(func: &mut Function) -> usize {
    let du = DefUse::compute(func);
    let mut replace: HashMap<VReg, VReg> = HashMap::new();
    for (_, op) in func.ops.iter() {
        if let Opcode::Move = op.opcode {
            let dst = op.dsts[0];
            let src = op.srcs[0];
            if du.defs[dst].len() == 1 && du.defs[src].len() <= 1 && dst != src {
                replace.insert(dst, src);
            }
        }
    }
    if replace.is_empty() {
        return 0;
    }
    // Resolve chains (a <- b <- c).
    let resolve = |mut v: VReg, map: &HashMap<VReg, VReg>| {
        let mut hops = 0;
        while let Some(&next) = map.get(&v) {
            v = next;
            hops += 1;
            if hops > map.len() {
                break; // defensive: cycles cannot occur with single defs
            }
        }
        v
    };
    let mut count = 0usize;
    for op in func.ops.values_mut() {
        for s in op.srcs.iter_mut() {
            let r = resolve(*s, &replace);
            if r != *s {
                *s = r;
                count += 1;
            }
        }
    }
    for block in func.blocks.values_mut() {
        match &mut block.term {
            Some(Terminator::Branch { cond, .. }) => *cond = resolve(*cond, &replace),
            Some(Terminator::Return(Some(v))) => *v = resolve(*v, &replace),
            _ => {}
        }
    }
    count
}

/// Constant folding: pure integer operations whose operands are all
/// single-def constants are replaced by `iconst` results. Returns the
/// number of folded operations.
pub fn fold_constants(func: &mut Function) -> usize {
    let du = DefUse::compute(func);
    // Constant lattice: single-def iconst registers.
    let mut consts: HashMap<VReg, i64> = HashMap::new();
    for (_, op) in func.ops.iter() {
        if let Opcode::ConstInt(v) = op.opcode {
            let dst = op.dsts[0];
            if du.defs[dst].len() == 1 {
                consts.insert(dst, v);
            }
        }
    }
    let mut folded = 0usize;
    let op_ids: Vec<OpId> = func.ops.keys().collect();
    for oid in op_ids {
        let op = func.ops[oid].clone();
        let all_const = |srcs: &[VReg]| srcs.iter().all(|s| consts.contains_key(s));
        let value = match op.opcode {
            Opcode::IntBin(kind) if all_const(&op.srcs) => {
                let a = consts[&op.srcs[0]];
                let b = consts[&op.srcs[1]];
                match kind {
                    IntBinOp::Add => Some(a.wrapping_add(b)),
                    IntBinOp::Sub => Some(a.wrapping_sub(b)),
                    IntBinOp::Mul => Some(a.wrapping_mul(b)),
                    IntBinOp::Div if b != 0 => Some(a.wrapping_div(b)),
                    IntBinOp::Rem if b != 0 => Some(a.wrapping_rem(b)),
                    IntBinOp::And => Some(a & b),
                    IntBinOp::Or => Some(a | b),
                    IntBinOp::Xor => Some(a ^ b),
                    IntBinOp::Shl => Some(a.wrapping_shl(b as u32 & 63)),
                    IntBinOp::Shr => Some(a.wrapping_shr(b as u32 & 63)),
                    IntBinOp::Min => Some(a.min(b)),
                    IntBinOp::Max => Some(a.max(b)),
                    _ => None,
                }
            }
            Opcode::IntCmp(cmp) if all_const(&op.srcs) => {
                let a = consts[&op.srcs[0]];
                let b = consts[&op.srcs[1]];
                let r = match cmp {
                    Cmp::Eq => a == b,
                    Cmp::Ne => a != b,
                    Cmp::Lt => a < b,
                    Cmp::Le => a <= b,
                    Cmp::Gt => a > b,
                    Cmp::Ge => a >= b,
                };
                Some(r as i64)
            }
            _ => None,
        };
        if let Some(v) = value {
            func.ops[oid] = Op {
                opcode: Opcode::ConstInt(v),
                dsts: op.dsts.clone(),
                srcs: Vec::new(),
                block: op.block,
            };
            // The folded destination is itself constant now (if single-def).
            let dst = op.dsts[0];
            if du.defs[dst].len() == 1 {
                consts.insert(dst, v);
            }
            folded += 1;
        }
    }
    folded
}

/// Runs all passes over every function to a fixpoint (bounded rounds).
pub fn optimize(program: &mut Program) -> OptStats {
    let mut stats = OptStats::default();
    for _ in 0..8 {
        let before = stats;
        for func in program.functions.values_mut() {
            stats.copies_propagated += copy_propagation(func);
            stats.constants_folded += fold_constants(func);
            stats.cse_hits += lvn_function(func);
            stats.dce_removed += dce_function(func);
        }
        stats.rounds += 1;
        if !stats.changed(&before) {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::object::DataObject;
    use crate::opcode::MemWidth;
    use crate::verify::verify_program;

    #[test]
    fn dce_removes_unused_chain() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(1);
        let y = b.add(x, x); // dead
        let _z = b.mul(y, y); // dead
        b.ret(Some(x));
        let f = &mut p.functions[p.entry];
        let removed = dce_function(f);
        assert_eq!(removed, 2);
        verify_program(&p).unwrap();
        assert_eq!(p.num_ops(), 2); // iconst + ret
    }

    #[test]
    fn dce_keeps_side_effects() {
        let mut p = Program::new("t");
        let g = p.add_object(DataObject::global("g", 8));
        let mut b = FunctionBuilder::entry(&mut p);
        let a = b.addrof(g);
        let v = b.iconst(3);
        b.store(MemWidth::B4, a, v);
        b.ret(None);
        let before = p.num_ops();
        let removed = dce_function(&mut p.functions[p.entry]);
        assert_eq!(removed, 0);
        assert_eq!(p.num_ops(), before);
    }

    #[test]
    fn lvn_reuses_repeated_expressions() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(5);
        let a1 = b.add(x, x);
        let a2 = b.add(x, x); // CSE with a1
        let s = b.add(a1, a2);
        b.ret(Some(s));
        let f = &mut p.functions[p.entry];
        let hits = lvn_function(f);
        assert_eq!(hits, 1);
        let removed = dce_function(f);
        assert_eq!(removed, 1, "the duplicate add is now dead");
        verify_program(&p).unwrap();
    }

    #[test]
    fn lvn_respects_commutativity() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(5);
        let y = b.iconst(7);
        let a1 = b.add(x, y);
        let a2 = b.add(y, x); // same value, operands swapped
        let s = b.mul(a1, a2);
        b.ret(Some(s));
        let hits = lvn_function(&mut p.functions[p.entry]);
        assert_eq!(hits, 1);
    }

    #[test]
    fn lvn_does_not_cross_redefinition() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(5);
        let a1 = b.add(x, x);
        let two = b.iconst(2);
        b.mov_to(x, two); // x redefined!
        let a2 = b.add(x, x); // must NOT merge with a1
        let s = b.add(a1, a2);
        b.ret(Some(s));
        let hits = lvn_function(&mut p.functions[p.entry]);
        assert_eq!(hits, 0);
        let r = mcpart_run(&p);
        assert_eq!(r, 14); // 10 + 4
    }

    #[test]
    fn copy_propagation_shortens_chains() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(9);
        let c1 = b.mov(x);
        let c2 = b.mov(c1);
        let y = b.add(c2, c2);
        b.ret(Some(y));
        let f = &mut p.functions[p.entry];
        let n = copy_propagation(f);
        assert!(n >= 2, "{n}");
        let removed = dce_function(f);
        assert_eq!(removed, 2, "both movs dead");
        assert_eq!(mcpart_run(&p), 18);
    }

    #[test]
    fn constant_folding_collapses_arithmetic() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(6);
        let y = b.iconst(7);
        let z = b.mul(x, y);
        let one = b.iconst(1);
        let w = b.add(z, one);
        b.ret(Some(w));
        let entry = p.entry;
        let folded = fold_constants(&mut p.functions[entry]);
        assert_eq!(folded, 2);
        assert_eq!(mcpart_run(&p), 43);
        let removed = dce_function(&mut p.functions[entry]);
        assert!(removed >= 2, "inputs now dead: {removed}");
    }

    #[test]
    fn optimize_fixpoint_on_redundant_code() {
        let mut p = Program::new("t");
        let g = p.add_object(DataObject::global("g", 64));
        let mut b = FunctionBuilder::entry(&mut p);
        // Deliberately redundant address computations.
        let mut last = b.iconst(0);
        for i in 0..4 {
            let base = b.addrof(g);
            let four = b.iconst(4);
            let idx = b.iconst(i);
            let off = b.mul(idx, four);
            let addr = b.add(base, off);
            let v = b.load(MemWidth::B4, addr);
            last = b.add(v, last);
        }
        b.ret(Some(last));
        let before_ops = p.num_ops();
        let before_result = mcpart_run(&p);
        let stats = optimize(&mut p);
        verify_program(&p).unwrap();
        assert!(stats.constants_folded > 0, "{stats:?}");
        assert!(stats.dce_removed > 0, "{stats:?}");
        assert!(p.num_ops() < before_ops, "{} -> {}", before_ops, p.num_ops());
        assert_eq!(mcpart_run(&p), before_result);
    }

    /// Mini-interpreter for the test programs (integer return only),
    /// avoiding a dev-dependency cycle on mcpart-sim.
    fn mcpart_run(p: &Program) -> i64 {
        // Straight-line only: execute entry block sequentially.
        let f = p.entry_function();
        let mut regs: Vec<i64> = vec![0; f.num_vregs];
        let mut mem: Vec<u8> = vec![0; 1024];
        let mut bid = f.entry;
        for _ in 0..10_000 {
            for &oid in &f.blocks[bid].ops {
                let op = &f.ops[oid];
                let get = |i: usize| regs[op.srcs[i].index()];
                let v = match op.opcode {
                    Opcode::ConstInt(c) => Some(c),
                    Opcode::AddrOf(_) => Some(0),
                    Opcode::Move => Some(get(0)),
                    Opcode::IntBin(IntBinOp::Add) => Some(get(0).wrapping_add(get(1))),
                    Opcode::IntBin(IntBinOp::Mul) => Some(get(0).wrapping_mul(get(1))),
                    Opcode::IntBin(_) => Some(0),
                    Opcode::IntCmp(_) => Some(0),
                    Opcode::Load(_) => {
                        let a = get(0) as usize % 1020;
                        Some(i64::from(u32::from_le_bytes(
                            mem[a..a + 4].try_into().expect("4 bytes"),
                        )))
                    }
                    Opcode::Store(_) => {
                        let a = get(0) as usize % 1020;
                        let bytes = (get(1) as u32).to_le_bytes();
                        mem[a..a + 4].copy_from_slice(&bytes);
                        None
                    }
                    _ => None,
                };
                if let (Some(&d), Some(v)) = (op.dsts.first(), v) {
                    regs[d.index()] = v;
                }
            }
            match f.blocks[bid].term.as_ref().expect("terminated") {
                Terminator::Return(Some(v)) => return regs[v.index()],
                Terminator::Return(None) => return 0,
                Terminator::Jump(t) => bid = *t,
                Terminator::Branch { cond, then_block, else_block } => {
                    bid = if regs[cond.index()] != 0 { *then_block } else { *else_block };
                }
            }
        }
        panic!("test interpreter ran away");
    }
}
