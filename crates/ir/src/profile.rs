//! Execution profiles: block frequencies and heap allocation sizes.
//!
//! The paper's first pass uses a profile to (a) weight dynamic access
//! frequencies of memory operations and (b) discover how much data each
//! `malloc()` call site allocates. Profiles are either annotated
//! statically by workload generators or gathered by running the
//! functional simulator.

use crate::func::Function;
use crate::ids::{BlockId, EntityMap, FuncId, ObjectId, OpId};
use crate::program::Program;

/// Per-function profile: execution count of every basic block.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FuncProfile {
    /// Execution count per block.
    pub block_freq: EntityMap<BlockId, u64>,
}

impl FuncProfile {
    /// A profile assigning every block of `func` the frequency `freq`.
    pub fn uniform(func: &Function, freq: u64) -> Self {
        FuncProfile { block_freq: EntityMap::with_default(func.blocks.len(), freq) }
    }

    /// Dynamic execution count of an operation (= its block's count).
    pub fn op_freq(&self, func: &Function, op: OpId) -> u64 {
        self.block_freq[func.ops[op].block]
    }
}

/// A whole-program profile.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Profile {
    /// Per-function block frequencies, indexed by [`FuncId`].
    pub funcs: EntityMap<FuncId, FuncProfile>,
    /// Total bytes allocated per heap site over the profiling run.
    /// Global objects are absent (their size comes from their type).
    pub heap_bytes: EntityMap<ObjectId, u64>,
}

impl Profile {
    /// A profile assigning every block in every function frequency
    /// `freq`, with zero heap bytes.
    pub fn uniform(program: &Program, freq: u64) -> Self {
        Profile {
            funcs: program.functions.values().map(|f| FuncProfile::uniform(f, freq)).collect(),
            heap_bytes: EntityMap::with_default(program.objects.len(), 0),
        }
    }

    /// Block frequency lookup.
    pub fn block_freq(&self, func: FuncId, block: BlockId) -> u64 {
        self.funcs[func].block_freq[block]
    }

    /// Dynamic execution count of an operation.
    pub fn op_freq(&self, program: &Program, func: FuncId, op: OpId) -> u64 {
        self.funcs[func].op_freq(&program.functions[func], op)
    }

    /// Applies profiled heap sizes onto the program's object table, so
    /// that heap sites have a concrete size for balance computations.
    /// Returns the updated program (the original is untouched).
    pub fn apply_heap_sizes(&self, program: &Program) -> Program {
        let mut program = program.clone();
        for (obj, bytes) in self.heap_bytes.iter() {
            if *bytes > 0 {
                program.objects[obj].size = *bytes;
            }
        }
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::DataObject;
    use crate::op::Op;
    use crate::opcode::Opcode;

    #[test]
    fn uniform_profile_covers_all_blocks() {
        let mut p = Program::new("t");
        let main = p.entry;
        let b = p.functions[main].add_block("x");
        let prof = Profile::uniform(&p, 10);
        assert_eq!(prof.block_freq(main, b), 10);
    }

    #[test]
    fn op_freq_uses_block_freq() {
        let mut p = Program::new("t");
        let main = p.entry;
        let v = p.functions[main].new_vreg();
        let entry = p.functions[main].entry;
        let op = p.functions[main].append_op(entry, Op::new(Opcode::ConstInt(1), vec![v], vec![]));
        let mut prof = Profile::uniform(&p, 1);
        prof.funcs[main].block_freq[entry] = 99;
        assert_eq!(prof.op_freq(&p, main, op), 99);
    }

    #[test]
    fn apply_heap_sizes_updates_objects() {
        let mut p = Program::new("t");
        let site = p.add_object(DataObject::heap_site("buf"));
        let mut prof = Profile::uniform(&p, 1);
        prof.heap_bytes[site] = 4096;
        let p2 = prof.apply_heap_sizes(&p);
        assert_eq!(p2.objects[site].size, 4096);
        assert_eq!(p.objects[site].size, 0);
    }
}
