//! Strongly-typed entity identifiers and dense entity maps.
//!
//! Every IR entity (function, block, operation, virtual register, data
//! object) is referred to by a small integer id wrapped in a newtype. Ids
//! are dense per-container, so entity attributes can be stored in flat
//! vectors via [`EntityMap`].

use std::fmt;
use std::marker::PhantomData;

/// Trait implemented by all entity id newtypes.
///
/// An entity id is a thin wrapper over a `u32` index. Implementors are
/// created with [`EntityId::new`] and expose their raw index with
/// [`EntityId::index`].
pub trait EntityId: Copy + Eq + std::hash::Hash + fmt::Debug {
    /// Creates an id from a raw dense index.
    fn new(index: usize) -> Self;
    /// Returns the raw dense index of this id.
    fn index(self) -> usize;
}

macro_rules! entity_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl EntityId for $name {
            #[inline]
            fn new(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize);
                $name(index as u32)
            }
            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

entity_id!(
    /// Identifies a function within a [`crate::Program`].
    FuncId,
    "fn"
);
entity_id!(
    /// Identifies a basic block within a [`crate::Function`].
    BlockId,
    "bb"
);
entity_id!(
    /// Identifies an operation within a [`crate::Function`].
    OpId,
    "op"
);
entity_id!(
    /// Identifies a virtual register within a [`crate::Function`].
    VReg,
    "v"
);
entity_id!(
    /// Identifies a data object (global variable or heap allocation
    /// site) within a [`crate::Program`].
    ObjectId,
    "obj"
);
entity_id!(
    /// Identifies a scheduling/partitioning region within a
    /// [`crate::Function`]. A region groups one or more basic blocks that
    /// the computation partitioner considers jointly.
    RegionId,
    "rgn"
);

/// A cluster index in a multicluster machine.
///
/// Clusters are numbered densely from zero. This type lives in the IR
/// crate (rather than the machine crate) because partition results
/// annotate IR entities with cluster assignments.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u16);

impl ClusterId {
    /// Returns the raw dense index of this cluster.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a cluster id from a raw dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u16::MAX`.
    #[inline]
    pub fn new(index: usize) -> Self {
        assert!(index <= u16::MAX as usize, "cluster index out of range");
        ClusterId(index as u16)
    }
}

impl fmt::Debug for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A dense map from an entity id to a value, backed by a `Vec`.
///
/// `EntityMap` is the canonical way to attach attributes to IR entities:
/// the id's raw index addresses the backing vector directly.
#[derive(Clone, PartialEq, Eq)]
pub struct EntityMap<K: EntityId, V> {
    values: Vec<V>,
    _marker: PhantomData<K>,
}

impl<K: EntityId, V> EntityMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        EntityMap { values: Vec::new(), _marker: PhantomData }
    }

    /// Creates a map with `n` copies of `value`.
    pub fn with_default(n: usize, value: V) -> Self
    where
        V: Clone,
    {
        EntityMap { values: vec![value; n], _marker: PhantomData }
    }

    /// Appends a value, returning the id it was assigned.
    pub fn push(&mut self, value: V) -> K {
        let id = K::new(self.values.len());
        self.values.push(value);
        id
    }

    /// Number of entities in the map.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the map holds no entities.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Returns the value for `key`, if present.
    pub fn get(&self, key: K) -> Option<&V> {
        self.values.get(key.index())
    }

    /// Iterates over `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.values.iter().enumerate().map(|(i, v)| (K::new(i), v))
    }

    /// Iterates over values in id order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.values.iter()
    }

    /// Iterates mutably over values in id order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.values.iter_mut()
    }

    /// Iterates over all ids in the map.
    pub fn keys(&self) -> impl Iterator<Item = K> {
        (0..self.values.len()).map(K::new)
    }
}

impl<K: EntityId, V> Default for EntityMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: EntityId, V> std::ops::Index<K> for EntityMap<K, V> {
    type Output = V;
    #[inline]
    fn index(&self, key: K) -> &V {
        &self.values[key.index()]
    }
}

impl<K: EntityId, V> std::ops::IndexMut<K> for EntityMap<K, V> {
    #[inline]
    fn index_mut(&mut self, key: K) -> &mut V {
        &mut self.values[key.index()]
    }
}

impl<K: EntityId, V: fmt::Debug> fmt::Debug for EntityMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: EntityId, V> FromIterator<V> for EntityMap<K, V> {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        EntityMap { values: iter.into_iter().collect(), _marker: PhantomData }
    }
}

impl<K: EntityId, V> Extend<V> for EntityMap<K, V> {
    fn extend<I: IntoIterator<Item = V>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_id_roundtrip() {
        let id = OpId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "op42");
        assert_eq!(format!("{id:?}"), "op42");
    }

    #[test]
    fn cluster_id_roundtrip() {
        let c = ClusterId::new(3);
        assert_eq!(c.index(), 3);
        assert_eq!(format!("{c}"), "c3");
    }

    #[test]
    fn entity_map_push_and_index() {
        let mut m: EntityMap<VReg, i32> = EntityMap::new();
        let a = m.push(10);
        let b = m.push(20);
        assert_eq!(m[a], 10);
        assert_eq!(m[b], 20);
        assert_eq!(m.len(), 2);
        m[a] = 15;
        assert_eq!(m[a], 15);
    }

    #[test]
    fn entity_map_iter_orders_by_id() {
        let m: EntityMap<BlockId, char> = "abc".chars().collect();
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs[0], (BlockId::new(0), &'a'));
        assert_eq!(pairs[2], (BlockId::new(2), &'c'));
        assert_eq!(m.keys().count(), 3);
    }

    #[test]
    fn entity_map_with_default() {
        let m: EntityMap<OpId, u8> = EntityMap::with_default(4, 7);
        assert_eq!(m.len(), 4);
        assert!(m.values().all(|&v| v == 7));
    }

    #[test]
    fn entity_map_get_out_of_range() {
        let m: EntityMap<OpId, u8> = EntityMap::new();
        assert!(m.get(OpId::new(0)).is_none());
        assert!(m.is_empty());
    }
}
