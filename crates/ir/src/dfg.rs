//! Def-use information over a function.

use crate::func::Function;
use crate::ids::{EntityMap, OpId, VReg};

/// Definition and use sites of every virtual register in a function.
///
/// The IR is not SSA: loop-carried registers may have several
/// definitions. Consumers that need a single placement per value (the
/// cluster partitioners) group all definitions of a register into one
/// unit; see `mcpart-core`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DefUse {
    /// All operations defining each register, in op-id order.
    pub defs: EntityMap<VReg, Vec<OpId>>,
    /// All operations using each register, in op-id order.
    pub uses: EntityMap<VReg, Vec<OpId>>,
}

impl DefUse {
    /// Computes def-use information for `func`.
    pub fn compute(func: &Function) -> Self {
        let n = func.num_vregs;
        let mut defs: EntityMap<VReg, Vec<OpId>> = EntityMap::with_default(n, Vec::new());
        let mut uses: EntityMap<VReg, Vec<OpId>> = EntityMap::with_default(n, Vec::new());
        for (id, op) in func.ops.iter() {
            for &d in &op.dsts {
                defs[d].push(id);
            }
            for &s in &op.srcs {
                uses[s].push(id);
            }
        }
        DefUse { defs, uses }
    }

    /// The unique definition of `v`, if it has exactly one.
    pub fn single_def(&self, v: VReg) -> Option<OpId> {
        match self.defs[v].as_slice() {
            [d] => Some(*d),
            _ => None,
        }
    }

    /// Returns `true` if `v` has no definition (it is a parameter or
    /// live-in).
    pub fn is_undefined(&self, v: VReg) -> bool {
        self.defs[v].is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::opcode::MemWidth;
    use crate::program::Program;

    #[test]
    fn defuse_tracks_defs_and_uses() {
        let mut p = Program::new("t");
        let obj = p.add_object(crate::object::DataObject::global("g", 16));
        let mut b = FunctionBuilder::entry(&mut p);
        let base = b.addrof(obj);
        let v = b.load(MemWidth::B4, base);
        let w = b.add(v, v);
        b.store(MemWidth::B4, base, w);
        b.ret(None);
        let f = p.entry_function();
        let du = DefUse::compute(f);
        // base: defined once, used by load and store
        assert_eq!(du.defs[base].len(), 1);
        assert_eq!(du.uses[base].len(), 2);
        // v: used twice by the same add
        assert_eq!(du.uses[v].len(), 2);
        assert!(du.single_def(w).is_some());
    }

    #[test]
    fn params_are_undefined() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.param();
        b.ret(Some(x));
        let du = DefUse::compute(p.entry_function());
        assert!(du.is_undefined(x));
        assert_eq!(du.uses[x].len(), 1);
    }

    #[test]
    fn loop_carried_register_has_two_defs() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let i = b.iconst(0);
        let body = b.block("body");
        b.jump(body);
        b.switch_to(body);
        let one = b.iconst(1);
        let next = b.add(i, one);
        b.mov_to(i, next);
        b.ret(None);
        let du = DefUse::compute(p.entry_function());
        assert_eq!(du.defs[i].len(), 2);
        assert!(du.single_def(i).is_none());
    }
}
