//! Textual dump of programs for debugging and golden tests.

use crate::block::Terminator;
use crate::func::Function;
use crate::program::Program;
use std::fmt::Write as _;

/// Renders a function as readable text.
pub fn function_to_string(func: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = func.params.iter().map(|p| p.to_string()).collect();
    let _ = writeln!(out, "func {}({}) {{", func.name, params.join(", "));
    for (bid, block) in func.blocks.iter() {
        let _ = writeln!(out, "{bid} ({}):", block.label);
        for &op_id in &block.ops {
            let op = &func.ops[op_id];
            let dsts: Vec<String> = op.dsts.iter().map(|d| d.to_string()).collect();
            let srcs: Vec<String> = op.srcs.iter().map(|s| s.to_string()).collect();
            let lhs =
                if dsts.is_empty() { String::new() } else { format!("{} = ", dsts.join(", ")) };
            let srcs_str = srcs.join(", ");
            let sep = if srcs_str.is_empty() { "" } else { " " };
            let _ = writeln!(out, "  {op_id}: {lhs}{}{sep}{srcs_str}", op.opcode);
        }
        match &block.term {
            Some(Terminator::Jump(t)) => {
                let _ = writeln!(out, "  -> {t}");
            }
            Some(Terminator::Branch { cond, then_block, else_block }) => {
                let _ = writeln!(out, "  -> if {cond} then {then_block} else {else_block}");
            }
            Some(Terminator::Return(v)) => {
                let _ =
                    writeln!(out, "  -> return{}", v.map(|v| format!(" {v}")).unwrap_or_default());
            }
            None => {
                let _ = writeln!(out, "  -> <unterminated>");
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a whole program, including its data object table.
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {}", program.name);
    let _ = writeln!(out, "entry {}", program.entry);
    for (oid, obj) in program.objects.iter() {
        let _ = writeln!(out, "  {oid}: {obj}");
    }
    for func in program.functions.values() {
        out.push_str(&function_to_string(func));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::object::DataObject;
    use crate::opcode::MemWidth;

    #[test]
    fn printing_mentions_everything() {
        let mut p = Program::new("demo");
        let obj = p.add_object(DataObject::global("tbl", 32));
        let mut b = FunctionBuilder::entry(&mut p);
        let a = b.addrof(obj);
        let v = b.load(MemWidth::B2, a);
        b.ret(Some(v));
        let text = program_to_string(&p);
        assert!(text.contains("program demo"));
        assert!(text.contains("tbl"));
        assert!(text.contains("load.2"));
        assert!(text.contains("return"));
    }
}
