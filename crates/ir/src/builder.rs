//! Ergonomic construction of IR functions.
//!
//! [`FunctionBuilder`] appends operations to a current block and manages
//! virtual-register allocation, so workload generators and tests can
//! write near-linear code:
//!
//! ```
//! use mcpart_ir::{Program, DataObject, FunctionBuilder, Terminator, MemWidth};
//!
//! let mut program = Program::new("example");
//! let table = program.add_object(DataObject::global("table", 256));
//! let mut b = FunctionBuilder::entry(&mut program);
//! let base = b.addrof(table);
//! let idx = b.iconst(4);
//! let addr = b.add(base, idx);
//! let val = b.load(MemWidth::B4, addr);
//! b.ret(Some(val));
//! ```

use crate::block::Terminator;
use crate::func::Function;
use crate::ids::{BlockId, FuncId, ObjectId, OpId, VReg};
use crate::op::Op;
use crate::opcode::{Cmp, FloatBinOp, IntBinOp, MemWidth, Opcode};
use crate::program::Program;

/// Builder appending operations to a function inside a [`Program`].
#[derive(Debug)]
pub struct FunctionBuilder<'a> {
    program: &'a mut Program,
    func: FuncId,
    cur: BlockId,
}

impl<'a> FunctionBuilder<'a> {
    /// Builds into the program's entry function, positioned at its entry
    /// block.
    pub fn entry(program: &'a mut Program) -> Self {
        let func = program.entry;
        let cur = program.functions[func].entry;
        FunctionBuilder { program, func, cur }
    }

    /// Adds a new function named `name` and builds into it.
    pub fn new_function(program: &'a mut Program, name: impl Into<String>) -> Self {
        let func = program.add_function(Function::new(name));
        let cur = program.functions[func].entry;
        FunctionBuilder { program, func, cur }
    }

    /// Builds into an existing function, positioned at its entry block.
    pub fn of(program: &'a mut Program, func: FuncId) -> Self {
        let cur = program.functions[func].entry;
        FunctionBuilder { program, func, cur }
    }

    /// The function being built.
    pub fn func_id(&self) -> FuncId {
        self.func
    }

    /// The block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Immutable access to the function under construction.
    pub fn func(&self) -> &Function {
        &self.program.functions[self.func]
    }

    fn func_mut(&mut self) -> &mut Function {
        &mut self.program.functions[self.func]
    }

    /// Declares a function parameter, allocating its register.
    pub fn param(&mut self) -> VReg {
        let v = self.func_mut().new_vreg();
        self.func_mut().params.push(v);
        v
    }

    /// Creates a new block (does not switch to it).
    pub fn block(&mut self, label: impl Into<String>) -> BlockId {
        self.func_mut().add_block(label)
    }

    /// Switches the insertion point to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cur = block;
    }

    /// Appends a raw operation to the current block.
    pub fn emit(&mut self, opcode: Opcode, dsts: Vec<VReg>, srcs: Vec<VReg>) -> OpId {
        let cur = self.cur;
        self.func_mut().append_op(cur, Op::new(opcode, dsts, srcs))
    }

    fn emit1(&mut self, opcode: Opcode, srcs: Vec<VReg>) -> VReg {
        let dst = self.func_mut().new_vreg();
        self.emit(opcode, vec![dst], srcs);
        dst
    }

    /// `dst = value` integer constant.
    pub fn iconst(&mut self, value: i64) -> VReg {
        self.emit1(Opcode::ConstInt(value), vec![])
    }

    /// `dst = value` float constant.
    pub fn fconst(&mut self, value: f64) -> VReg {
        self.emit1(Opcode::ConstFloat(value.to_bits()), vec![])
    }

    /// `dst = &object`.
    pub fn addrof(&mut self, object: ObjectId) -> VReg {
        self.emit1(Opcode::AddrOf(object), vec![])
    }

    /// Generic integer binary operation.
    pub fn ibin(&mut self, op: IntBinOp, a: VReg, b: VReg) -> VReg {
        self.emit1(Opcode::IntBin(op), vec![a, b])
    }

    /// `dst = a + b`.
    pub fn add(&mut self, a: VReg, b: VReg) -> VReg {
        self.ibin(IntBinOp::Add, a, b)
    }

    /// `dst = a - b`.
    pub fn sub(&mut self, a: VReg, b: VReg) -> VReg {
        self.ibin(IntBinOp::Sub, a, b)
    }

    /// `dst = a * b`.
    pub fn mul(&mut self, a: VReg, b: VReg) -> VReg {
        self.ibin(IntBinOp::Mul, a, b)
    }

    /// `dst = a >> b` (arithmetic).
    pub fn shr(&mut self, a: VReg, b: VReg) -> VReg {
        self.ibin(IntBinOp::Shr, a, b)
    }

    /// `dst = a << b`.
    pub fn shl(&mut self, a: VReg, b: VReg) -> VReg {
        self.ibin(IntBinOp::Shl, a, b)
    }

    /// `dst = a & b`.
    pub fn and(&mut self, a: VReg, b: VReg) -> VReg {
        self.ibin(IntBinOp::And, a, b)
    }

    /// `dst = a | b`.
    pub fn or(&mut self, a: VReg, b: VReg) -> VReg {
        self.ibin(IntBinOp::Or, a, b)
    }

    /// Integer comparison producing 0/1.
    pub fn icmp(&mut self, cmp: Cmp, a: VReg, b: VReg) -> VReg {
        self.emit1(Opcode::IntCmp(cmp), vec![a, b])
    }

    /// `dst = cond != 0 ? a : b`.
    pub fn select(&mut self, cond: VReg, a: VReg, b: VReg) -> VReg {
        self.emit1(Opcode::Select, vec![cond, a, b])
    }

    /// Generic float binary operation.
    pub fn fbin(&mut self, op: FloatBinOp, a: VReg, b: VReg) -> VReg {
        self.emit1(Opcode::FloatBin(op), vec![a, b])
    }

    /// `dst = a +. b`.
    pub fn fadd(&mut self, a: VReg, b: VReg) -> VReg {
        self.fbin(FloatBinOp::Add, a, b)
    }

    /// `dst = a *. b`.
    pub fn fmul(&mut self, a: VReg, b: VReg) -> VReg {
        self.fbin(FloatBinOp::Mul, a, b)
    }

    /// Float comparison producing integer 0/1.
    pub fn fcmp(&mut self, cmp: Cmp, a: VReg, b: VReg) -> VReg {
        self.emit1(Opcode::FloatCmp(cmp), vec![a, b])
    }

    /// `dst = (float) src`.
    pub fn itof(&mut self, src: VReg) -> VReg {
        self.emit1(Opcode::IntToFloat, vec![src])
    }

    /// `dst = (int) src`.
    pub fn ftoi(&mut self, src: VReg) -> VReg {
        self.emit1(Opcode::FloatToInt, vec![src])
    }

    /// `dst = load.width [addr]`.
    pub fn load(&mut self, width: MemWidth, addr: VReg) -> VReg {
        self.emit1(Opcode::Load(width), vec![addr])
    }

    /// `store.width [addr] = value`.
    pub fn store(&mut self, width: MemWidth, addr: VReg, value: VReg) -> OpId {
        self.emit(Opcode::Store(width), vec![], vec![addr, value])
    }

    /// `dst = malloc(size)` attributed to allocation site `site`.
    pub fn malloc(&mut self, site: ObjectId, size: VReg) -> VReg {
        self.emit1(Opcode::Malloc(site), vec![size])
    }

    /// `dst = src` register copy.
    pub fn mov(&mut self, src: VReg) -> VReg {
        self.emit1(Opcode::Move, vec![src])
    }

    /// `dst = src` copy into an existing register (used for loop-carried
    /// variables).
    pub fn mov_to(&mut self, dst: VReg, src: VReg) -> OpId {
        self.emit(Opcode::Move, vec![dst], vec![src])
    }

    /// `dsts = call callee(args)`; allocates `num_results` registers.
    pub fn call(&mut self, callee: FuncId, args: Vec<VReg>, num_results: usize) -> Vec<VReg> {
        let dsts: Vec<VReg> = (0..num_results).map(|_| self.func_mut().new_vreg()).collect();
        self.emit(Opcode::Call(callee), dsts.clone(), args);
        dsts
    }

    /// Terminates the current block with a conditional branch and emits
    /// the branch-unit condition-evaluation op.
    pub fn branch(&mut self, cond: VReg, then_block: BlockId, else_block: BlockId) {
        self.emit(Opcode::BranchCond, vec![], vec![cond]);
        let cur = self.cur;
        self.func_mut().terminate(cur, Terminator::Branch { cond, then_block, else_block });
    }

    /// Terminates the current block with a jump and emits the
    /// branch-unit op.
    pub fn jump(&mut self, target: BlockId) {
        self.emit(Opcode::Jump, vec![], vec![]);
        let cur = self.cur;
        self.func_mut().terminate(cur, Terminator::Jump(target));
    }

    /// Terminates the current block with a return and emits the
    /// branch-unit op.
    pub fn ret(&mut self, value: Option<VReg>) {
        let srcs = value.map(|v| vec![v]).unwrap_or_default();
        self.emit(Opcode::Ret, vec![], srcs);
        let cur = self.cur;
        self.func_mut().terminate(cur, Terminator::Return(value));
    }

    /// Declares a region over `blocks` in the function under
    /// construction.
    pub fn region(&mut self, name: impl Into<String>, blocks: Vec<BlockId>) {
        self.func_mut().add_region(name, blocks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_build() {
        let mut p = Program::new("t");
        let obj = p.add_object(crate::object::DataObject::global("g", 64));
        let mut b = FunctionBuilder::entry(&mut p);
        let base = b.addrof(obj);
        let four = b.iconst(4);
        let addr = b.add(base, four);
        let v = b.load(MemWidth::B4, addr);
        let two = b.iconst(2);
        let shifted = b.shr(v, two);
        b.store(MemWidth::B4, addr, shifted);
        b.ret(None);
        let f = p.entry_function();
        // addrof, iconst, add, load, iconst, shr, store, ret
        assert_eq!(f.num_ops(), 8);
        assert!(f.blocks[f.entry].term.is_some());
    }

    #[test]
    fn diamond_cfg_build() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.param();
        let zero = b.iconst(0);
        let c = b.icmp(Cmp::Gt, x, zero);
        let t = b.block("then");
        let e = b.block("else");
        let m = b.block("merge");
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(m);
        b.switch_to(e);
        b.jump(m);
        b.switch_to(m);
        b.ret(Some(x));
        let f = p.entry_function();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.blocks[f.entry].successors().len(), 2);
        assert_eq!(f.params.len(), 1);
    }

    #[test]
    fn call_allocates_result_registers() {
        let mut p = Program::new("t");
        let callee = {
            let mut cb = FunctionBuilder::new_function(&mut p, "helper");
            let a = cb.param();
            cb.ret(Some(a));
            cb.func_id()
        };
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(1);
        let rets = b.call(callee, vec![x], 1);
        assert_eq!(rets.len(), 1);
        b.ret(Some(rets[0]));
    }
}
