//! Functions: CFG + operation arena + regions.

use crate::block::{Block, Terminator};
use crate::ids::{BlockId, EntityMap, OpId, RegionId, VReg};
use crate::op::Op;

/// A partitioning/scheduling region: a group of basic blocks whose
/// operations the computation partitioner considers jointly (the paper's
/// RHOP operates region by region — typically a loop body or hyperblock).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Region {
    /// Member blocks, in program order.
    pub blocks: Vec<BlockId>,
    /// Human-readable name for diagnostics.
    pub name: String,
}

/// A function: an operation arena, a CFG of basic blocks, and a region
/// decomposition.
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Operation arena. Blocks reference ops by id.
    pub ops: EntityMap<OpId, Op>,
    /// Basic blocks.
    pub blocks: EntityMap<BlockId, Block>,
    /// Entry block.
    pub entry: BlockId,
    /// Number of virtual registers in use.
    pub num_vregs: usize,
    /// Registers holding incoming arguments (defined on entry).
    pub params: Vec<VReg>,
    /// Region decomposition covering every block exactly once. If empty,
    /// each block is implicitly its own region.
    pub regions: EntityMap<RegionId, Region>,
}

impl Function {
    /// Creates an empty function with a fresh entry block.
    pub fn new(name: impl Into<String>) -> Self {
        let mut blocks = EntityMap::new();
        let entry = blocks.push(Block::new("entry"));
        Function {
            name: name.into(),
            ops: EntityMap::new(),
            blocks,
            entry,
            num_vregs: 0,
            params: Vec::new(),
            regions: EntityMap::new(),
        }
    }

    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        let v = VReg(self.num_vregs as u32);
        self.num_vregs += 1;
        v
    }

    /// Appends `op` to `block`, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated.
    pub fn append_op(&mut self, block: BlockId, mut op: Op) -> OpId {
        assert!(self.blocks[block].term.is_none(), "appending to terminated block {block}");
        op.block = block;
        let id = self.ops.push(op);
        self.blocks[block].ops.push(id);
        id
    }

    /// Creates a new empty block.
    pub fn add_block(&mut self, label: impl Into<String>) -> BlockId {
        self.blocks.push(Block::new(label))
    }

    /// Sets the terminator of `block`.
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated.
    pub fn terminate(&mut self, block: BlockId, term: Terminator) {
        assert!(self.blocks[block].term.is_none(), "block {block} already terminated");
        self.blocks[block].term = Some(term);
    }

    /// Iterates over `(BlockId, &Block)` in id order.
    pub fn block_iter(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter()
    }

    /// The region decomposition, synthesizing one-region-per-block when
    /// none was declared.
    pub fn effective_regions(&self) -> Vec<Region> {
        if self.regions.is_empty() {
            self.blocks
                .iter()
                .map(|(b, blk)| Region { blocks: vec![b], name: blk.label.clone() })
                .collect()
        } else {
            self.regions.values().cloned().collect()
        }
    }

    /// Declares a region over `blocks`.
    pub fn add_region(&mut self, name: impl Into<String>, blocks: Vec<BlockId>) -> RegionId {
        self.regions.push(Region { blocks, name: name.into() })
    }

    /// Total number of operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;

    #[test]
    fn new_function_has_entry_block() {
        let f = Function::new("main");
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.entry, BlockId(0));
        assert_eq!(f.num_ops(), 0);
    }

    #[test]
    fn append_op_records_block() {
        let mut f = Function::new("main");
        let v = f.new_vreg();
        let id = f.append_op(f.entry, Op::new(Opcode::ConstInt(7), vec![v], vec![]));
        assert_eq!(f.ops[id].block, f.entry);
        assert_eq!(f.blocks[f.entry].ops, vec![id]);
    }

    #[test]
    #[should_panic(expected = "terminated")]
    fn append_after_terminate_panics() {
        let mut f = Function::new("main");
        f.terminate(f.entry, Terminator::Return(None));
        let v = f.new_vreg();
        f.append_op(f.entry, Op::new(Opcode::ConstInt(0), vec![v], vec![]));
    }

    #[test]
    fn effective_regions_default_to_blocks() {
        let mut f = Function::new("main");
        let b1 = f.add_block("loop");
        f.terminate(f.entry, Terminator::Jump(b1));
        f.terminate(b1, Terminator::Return(None));
        let regions = f.effective_regions();
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].blocks, vec![f.entry]);
    }

    #[test]
    fn declared_regions_override_default() {
        let mut f = Function::new("main");
        let b1 = f.add_block("body");
        f.add_region("all", vec![f.entry, b1]);
        let regions = f.effective_regions();
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].blocks.len(), 2);
    }
}
