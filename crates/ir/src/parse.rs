//! Parsing of the textual IR form produced by [`crate::program_to_string`].
//!
//! The text format round-trips: `parse_program(program_to_string(p))`
//! reconstructs `p` exactly (same ids, same structure). Entity names
//! (program, objects, functions, block labels) must not contain
//! whitespace or parentheses.

use crate::block::Terminator;
use crate::func::Function;
use crate::ids::{BlockId, EntityId, FuncId, ObjectId, VReg};
use crate::object::DataObject;
use crate::op::Op;
use crate::opcode::{Cmp, FloatBinOp, IntBinOp, MemWidth, Opcode};
use crate::program::Program;
use std::error::Error;
use std::fmt;

/// A parse failure, with the 1-based line and column numbers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line of the failure.
    pub line: usize,
    /// 1-based column of the offending token (1 when the whole line is
    /// at fault or the exact position is unknown).
    pub column: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}: {}", self.line, self.column, self.message)
    }
}

impl Error for ParseError {}

/// Source position of a token: 1-based line and column.
#[derive(Clone, Copy)]
struct Pos {
    line: usize,
    column: usize,
}

impl Pos {
    fn start(line: usize) -> Self {
        Pos { line, column: 1 }
    }

    /// Position of `token` within `text` (the raw source line); falls
    /// back to column 1 when the token cannot be located.
    fn of(line: usize, text: &str, token: &str) -> Self {
        Pos { line, column: text.find(token).map_or(1, |i| i + 1) }
    }
}

fn err<T>(pos: Pos, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line: pos.line, column: pos.column, message: message.into() })
}

fn parse_id<K: EntityId>(pos: Pos, token: &str, prefix: &str) -> Result<K, ParseError> {
    match token.strip_prefix(prefix).and_then(|t| t.parse::<usize>().ok()) {
        Some(i) => Ok(K::new(i)),
        None => err(pos, format!("expected `{prefix}N`, found `{token}`")),
    }
}

fn parse_vreg(pos: Pos, token: &str) -> Result<VReg, ParseError> {
    parse_id::<VReg>(pos, token.trim_end_matches(','), "v")
}

fn parse_cmp(pos: Pos, token: &str) -> Result<Cmp, ParseError> {
    Ok(match token {
        "eq" => Cmp::Eq,
        "ne" => Cmp::Ne,
        "lt" => Cmp::Lt,
        "le" => Cmp::Le,
        "gt" => Cmp::Gt,
        "ge" => Cmp::Ge,
        _ => return err(pos, format!("unknown comparison `{token}`")),
    })
}

fn parse_width(pos: Pos, token: &str) -> Result<MemWidth, ParseError> {
    Ok(match token {
        "1" => MemWidth::B1,
        "2" => MemWidth::B2,
        "4" => MemWidth::B4,
        "8" => MemWidth::B8,
        _ => return err(pos, format!("unknown access width `{token}`")),
    })
}

fn parse_opcode(pos: Pos, mnemonic: &str, arg: Option<&str>) -> Result<Opcode, ParseError> {
    let int_bin = |op| Ok(Opcode::IntBin(op));
    let float_bin = |op| Ok(Opcode::FloatBin(op));
    match mnemonic {
        "iconst" => {
            let v = arg.and_then(|a| a.parse::<i64>().ok()).ok_or(ParseError {
                line: pos.line,
                column: pos.column,
                message: "iconst needs an integer".into(),
            })?;
            Ok(Opcode::ConstInt(v))
        }
        "fconst" => {
            let v = arg.and_then(|a| a.parse::<f64>().ok()).ok_or(ParseError {
                line: pos.line,
                column: pos.column,
                message: "fconst needs a float".into(),
            })?;
            Ok(Opcode::ConstFloat(v.to_bits()))
        }
        "addrof" => {
            let obj = parse_id::<ObjectId>(pos, arg.unwrap_or(""), "obj")?;
            Ok(Opcode::AddrOf(obj))
        }
        "malloc" => {
            let obj = parse_id::<ObjectId>(pos, arg.unwrap_or(""), "obj")?;
            Ok(Opcode::Malloc(obj))
        }
        "call" => {
            let f = parse_id::<FuncId>(pos, arg.unwrap_or(""), "fn")?;
            Ok(Opcode::Call(f))
        }
        "add" => int_bin(IntBinOp::Add),
        "sub" => int_bin(IntBinOp::Sub),
        "mul" => int_bin(IntBinOp::Mul),
        "div" => int_bin(IntBinOp::Div),
        "rem" => int_bin(IntBinOp::Rem),
        "and" => int_bin(IntBinOp::And),
        "or" => int_bin(IntBinOp::Or),
        "xor" => int_bin(IntBinOp::Xor),
        "shl" => int_bin(IntBinOp::Shl),
        "shr" => int_bin(IntBinOp::Shr),
        "min" => int_bin(IntBinOp::Min),
        "max" => int_bin(IntBinOp::Max),
        "fadd" => float_bin(FloatBinOp::Add),
        "fsub" => float_bin(FloatBinOp::Sub),
        "fmul" => float_bin(FloatBinOp::Mul),
        "fdiv" => float_bin(FloatBinOp::Div),
        "select" => Ok(Opcode::Select),
        "itof" => Ok(Opcode::IntToFloat),
        "ftoi" => Ok(Opcode::FloatToInt),
        "mov" => Ok(Opcode::Move),
        "brc" => Ok(Opcode::BranchCond),
        "jmp" => Ok(Opcode::Jump),
        "ret" => Ok(Opcode::Ret),
        _ => {
            if let Some(c) = mnemonic.strip_prefix("icmp.") {
                return Ok(Opcode::IntCmp(parse_cmp(pos, c)?));
            }
            if let Some(c) = mnemonic.strip_prefix("fcmp.") {
                return Ok(Opcode::FloatCmp(parse_cmp(pos, c)?));
            }
            if let Some(w) = mnemonic.strip_prefix("load.") {
                return Ok(Opcode::Load(parse_width(pos, w)?));
            }
            if let Some(w) = mnemonic.strip_prefix("store.") {
                return Ok(Opcode::Store(parse_width(pos, w)?));
            }
            err(pos, format!("unknown opcode `{mnemonic}`"))
        }
    }
}

/// Parses the textual form of a whole program.
///
/// # Errors
///
/// Returns a [`ParseError`] (with 1-based line and column) for
/// malformed input. The result is *structurally* parsed but not
/// semantically verified — run [`crate::verify_program`] afterwards.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let mut lines = text.lines().enumerate().peekable();

    // Header: `program <name>`.
    let (ln, first) =
        lines.next().ok_or(ParseError { line: 1, column: 1, message: "empty input".into() })?;
    let name = first
        .strip_prefix("program ")
        .ok_or(ParseError { line: ln + 1, column: 1, message: "expected `program <name>`".into() })?
        .trim()
        .to_string();

    // `entry fnN`.
    let (ln, entry_line) = lines.next().ok_or(ParseError {
        line: ln + 2,
        column: 1,
        message: "missing entry line".into(),
    })?;
    let entry_tok = entry_line
        .strip_prefix("entry ")
        .ok_or(ParseError { line: ln + 1, column: 1, message: "expected `entry fnN`".into() })?
        .trim();
    let entry: FuncId = parse_id(Pos::of(ln + 1, entry_line, entry_tok), entry_tok, "fn")?;

    let mut program = Program::new(name.clone());
    program.name = name;
    // Clear the implicit main; functions come from the text.
    program.functions = crate::ids::EntityMap::new();
    program.entry = entry;

    // Objects: `  objN: <kind> <name> (<size> bytes)`.
    while let Some(&(ln, line)) = lines.peek() {
        let trimmed = line.trim();
        if !trimmed.starts_with("obj") {
            break;
        }
        lines.next();
        let lno = ln + 1;
        let (id_part, rest) = trimmed.split_once(": ").ok_or(ParseError {
            line: lno,
            column: Pos::of(lno, line, trimmed).column,
            message: "expected `objN: ...`".into(),
        })?;
        let oid: ObjectId = parse_id(Pos::of(lno, line, id_part), id_part, "obj")?;
        if oid.index() != program.objects.len() {
            return err(
                Pos::of(lno, line, id_part),
                format!("object ids must be dense, found {id_part}"),
            );
        }
        let mut parts = rest.split_whitespace();
        let kind = parts.next().unwrap_or("");
        let obj_name = parts.next().unwrap_or("");
        let size_tok = parts.next().unwrap_or("").trim_start_matches('(');
        let size: u64 = size_tok.parse().map_err(|_| ParseError {
            line: lno,
            column: Pos::of(lno, line, size_tok).column,
            message: format!("bad size `{size_tok}`"),
        })?;
        let object = match kind {
            "global" => {
                let mut o = DataObject::global(obj_name, size);
                o.size = size;
                o
            }
            "heap" => {
                let mut o = DataObject::heap_site(obj_name);
                o.size = size;
                o
            }
            _ => return err(Pos::of(lno, line, kind), format!("unknown object kind `{kind}`")),
        };
        program.add_object(object);
    }

    // Functions.
    while let Some((ln, line)) = lines.next() {
        let lno = ln + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let Some(header) = trimmed.strip_prefix("func ") else {
            return err(
                Pos::of(lno, line, trimmed),
                format!("expected `func <name>(...)`, found `{trimmed}`"),
            );
        };
        let open = header.find('(').ok_or(ParseError {
            line: lno,
            column: Pos::of(lno, line, header).column,
            message: "missing `(` in function header".into(),
        })?;
        let fname = header[..open].trim().to_string();
        let close = header.find(')').ok_or(ParseError {
            line: lno,
            column: Pos::of(lno, line, header).column,
            message: "missing `)` in function header".into(),
        })?;
        let params: Vec<VReg> = header[open + 1..close]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|t| parse_vreg(Pos::of(lno, line, t), t))
            .collect::<Result<_, _>>()?;

        let mut func = Function::new(fname);
        func.blocks = crate::ids::EntityMap::new(); // blocks come from the text
        func.params = params.clone();
        let mut max_vreg: i64 = params.iter().map(|p| p.index() as i64).max().unwrap_or(-1);
        // Ops carry explicit ids in the text (they may be interleaved
        // across blocks in builder order); collect and place them at
        // their exact indices afterwards.
        let mut parsed_ops: Vec<(usize, usize, Op)> = Vec::new(); // (op id, line, op)
        let mut block_op_ids: Vec<Vec<usize>> = Vec::new();

        // Blocks until the closing `}`.
        let mut current: Option<BlockId> = None;
        loop {
            let Some((ln, line)) = lines.next() else {
                return err(Pos::start(lno), "unterminated function (missing `}`)");
            };
            let lno = ln + 1;
            let trimmed = line.trim();
            if trimmed == "}" {
                break;
            }
            if trimmed.is_empty() {
                continue;
            }
            if trimmed.starts_with("bb") && trimmed.ends_with(':') {
                // `bbN (label):`
                let body = trimmed.trim_end_matches(':');
                let (id_part, label_part) = match body.split_once(' ') {
                    Some((i, l)) => (i, l.trim().trim_start_matches('(').trim_end_matches(')')),
                    None => (body, ""),
                };
                let bid: BlockId = parse_id(Pos::of(lno, line, id_part), id_part, "bb")?;
                if bid.index() != func.blocks.len() {
                    return err(
                        Pos::of(lno, line, id_part),
                        format!("block ids must be dense, found {id_part}"),
                    );
                }
                current = Some(func.add_block(label_part));
                block_op_ids.push(Vec::new());
                continue;
            }
            let Some(block) = current else {
                return err(
                    Pos::of(lno, line, trimmed),
                    format!("statement outside a block: `{trimmed}`"),
                );
            };
            if let Some(term) = trimmed.strip_prefix("-> ") {
                let term = term.trim();
                let terminator = if let Some(rest) = term.strip_prefix("return") {
                    let v = rest.trim();
                    if v.is_empty() {
                        Terminator::Return(None)
                    } else {
                        Terminator::Return(Some(parse_vreg(Pos::of(lno, line, v), v)?))
                    }
                } else if let Some(rest) = term.strip_prefix("if ") {
                    // `if vN then bbA else bbB`
                    let tokens: Vec<&str> = rest.split_whitespace().collect();
                    if tokens.len() != 5 || tokens[1] != "then" || tokens[3] != "else" {
                        return err(Pos::of(lno, line, term), format!("malformed branch `{term}`"));
                    }
                    Terminator::Branch {
                        cond: parse_vreg(Pos::of(lno, line, tokens[0]), tokens[0])?,
                        then_block: parse_id(Pos::of(lno, line, tokens[2]), tokens[2], "bb")?,
                        else_block: parse_id(Pos::of(lno, line, tokens[4]), tokens[4], "bb")?,
                    }
                } else {
                    Terminator::Jump(parse_id(Pos::of(lno, line, term), term, "bb")?)
                };
                func.terminate(block, terminator);
                current = None; // ops after a terminator are an error via append_op
                continue;
            }
            // Operation: `opN: [dsts =] mnemonic [arg] [srcs]`.
            let (id_part, stmt) = trimmed.split_once(": ").ok_or(ParseError {
                line: lno,
                column: Pos::of(lno, line, trimmed).column,
                message: format!("expected `opN: ...`: `{trimmed}`"),
            })?;
            let op_id: crate::ids::OpId = parse_id(Pos::of(lno, line, id_part), id_part, "op")?;
            let (dsts, rhs) = match stmt.split_once(" = ") {
                Some((lhs, rhs)) => {
                    let dsts: Vec<VReg> = lhs
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(|t| parse_vreg(Pos::of(lno, line, t), t))
                        .collect::<Result<_, _>>()?;
                    (dsts, rhs)
                }
                None => (Vec::new(), stmt),
            };
            let mut tokens = rhs.split_whitespace();
            let mnemonic = tokens.next().ok_or(ParseError {
                line: lno,
                column: Pos::of(lno, line, trimmed).column,
                message: "missing opcode".into(),
            })?;
            let rest: Vec<&str> = tokens.collect();
            // Opcodes with an immediate/entity argument consume the
            // first token; remaining tokens are source registers.
            let takes_arg = matches!(mnemonic, "iconst" | "fconst" | "addrof" | "malloc" | "call");
            let (arg, src_tokens) = if takes_arg {
                match rest.split_first() {
                    Some((a, rest)) => (Some(*a), rest.to_vec()),
                    None => (None, Vec::new()),
                }
            } else {
                (None, rest)
            };
            let opcode = parse_opcode(Pos::of(lno, line, mnemonic), mnemonic, arg)?;
            let srcs: Vec<VReg> = src_tokens
                .iter()
                .map(|t| parse_vreg(Pos::of(lno, line, t), t))
                .collect::<Result<_, _>>()?;
            for &r in dsts.iter().chain(srcs.iter()) {
                max_vreg = max_vreg.max(r.index() as i64);
            }
            let mut op = Op::new(opcode, dsts, srcs);
            op.block = block;
            parsed_ops.push((op_id.index(), lno, op));
            block_op_ids[block.index()].push(op_id.index());
        }
        func.num_vregs = (max_vreg + 1) as usize;
        if !func.blocks.is_empty() {
            func.entry = BlockId::new(0);
        }
        // Place ops at their exact printed indices (ids must be dense).
        parsed_ops.sort_by_key(|&(id, _, _)| id);
        for (expected, (id, lno, _)) in parsed_ops.iter().enumerate() {
            if *id != expected {
                return err(Pos::start(*lno), format!("op ids must be dense, found op{id}"));
            }
        }
        func.ops = parsed_ops.into_iter().map(|(_, _, op)| op).collect();
        for (b, op_ids) in block_op_ids.into_iter().enumerate() {
            func.blocks[BlockId::new(b)].ops =
                op_ids.into_iter().map(crate::ids::OpId::new).collect();
        }
        program.add_function(func);
    }

    if program.entry.index() >= program.functions.len() {
        return err(Pos::start(1), format!("entry {} out of range", program.entry));
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::print::program_to_string;

    fn roundtrip(p: &Program) {
        let text = program_to_string(p);
        let parsed = parse_program(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        let text2 = program_to_string(&parsed);
        assert_eq!(text, text2, "round-trip mismatch");
        crate::verify::verify_program(&parsed).expect("parsed program verifies");
    }

    #[test]
    fn roundtrip_straight_line() {
        let mut p = Program::new("demo");
        let obj = p.add_object(DataObject::global("tbl", 64));
        let heap = p.add_object(DataObject::heap_site("buf"));
        let mut b = FunctionBuilder::entry(&mut p);
        let a = b.addrof(obj);
        let n = b.iconst(16);
        let h = b.malloc(heap, n);
        let v = b.load(MemWidth::B4, a);
        let f = b.fconst(2.5);
        let vf = b.itof(v);
        let prod = b.fmul(vf, f);
        let back = b.ftoi(prod);
        b.store(MemWidth::B8, h, back);
        b.ret(Some(back));
        roundtrip(&p);
    }

    #[test]
    fn roundtrip_control_flow() {
        let mut p = Program::new("cfg");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.param();
        let zero = b.iconst(0);
        let c = b.icmp(Cmp::Gt, x, zero);
        let t = b.block("then");
        let e = b.block("else");
        let m = b.block("merge");
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(m);
        b.switch_to(e);
        b.jump(m);
        b.switch_to(m);
        b.ret(Some(x));
        roundtrip(&p);
    }

    #[test]
    fn roundtrip_multi_function() {
        let mut p = Program::new("calls");
        let callee = {
            let mut cb = FunctionBuilder::new_function(&mut p, "helper");
            let a = cb.param();
            let r = cb.add(a, a);
            cb.ret(Some(r));
            cb.func_id()
        };
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(3);
        let r = b.call(callee, vec![x], 1);
        b.ret(Some(r[0]));
        roundtrip(&p);
    }

    #[test]
    fn roundtrip_workload_sized_program() {
        // A loop with selects, compares, and both table and pointer
        // accesses — representative of generated workloads.
        let mut p = Program::new("loopy");
        let tbl = p.add_object(DataObject::global("table", 128));
        let mut b = FunctionBuilder::entry(&mut p);
        let i = b.iconst(0);
        let n = b.iconst(32);
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jump(head);
        b.switch_to(head);
        let c = b.icmp(Cmp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let base = b.addrof(tbl);
        let four = b.iconst(4);
        let off = b.mul(i, four);
        let addr = b.add(base, off);
        let v = b.load(MemWidth::B4, addr);
        let one_sh = b.iconst(1);
        let doubled = b.shl(v, one_sh);
        b.store(MemWidth::B4, addr, doubled);
        let one = b.iconst(1);
        let next = b.add(i, one);
        b.mov_to(i, next);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        roundtrip(&p);
    }

    #[test]
    fn parse_error_reports_line() {
        let text = "program x\nentry fn0\nfunc main() {\nbb0 (entry):\n  op0: v0 = bogus\n  -> return\n}\n";
        let e = parse_program(text).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn parse_error_reports_column_of_offending_token() {
        let text = "program x\nentry fn0\nfunc main() {\nbb0 (entry):\n  op0: v0 = bogus\n  -> return\n}\n";
        let e = parse_program(text).unwrap_err();
        // `bogus` starts at byte 12 of `  op0: v0 = bogus` → column 13.
        assert_eq!(e.column, 13, "{e}");
        assert!(e.to_string().starts_with("line 5, column 13:"), "{e}");
    }

    #[test]
    fn parse_error_column_points_at_bad_register() {
        let text = "program x\nentry fn0\nfunc main() {\nbb0 (entry):\n  op0: v0 = add wrong, v0\n  -> return v0\n}\n";
        let e = parse_program(text).unwrap_err();
        assert_eq!((e.line, e.column), (5, 17), "{e}");
    }

    #[test]
    fn parse_rejects_missing_header() {
        let e = parse_program("nonsense").unwrap_err();
        assert!(e.to_string().contains("program"));
    }

    #[test]
    fn parse_rejects_sparse_op_ids() {
        let text = "program x\nentry fn0\nfunc main() {\nbb0 (entry):\n  op5: v0 = iconst 1\n  -> return v0\n}\n";
        let e = parse_program(text).unwrap_err();
        assert!(e.to_string().contains("dense"), "{e}");
    }

    #[test]
    fn parse_rejects_malformed_branch() {
        let text = "program x\nentry fn0\nfunc main() {\nbb0 (entry):\n  op0: v0 = iconst 1\n  -> if v0 bb1 bb2\n}\n";
        let e = parse_program(text).unwrap_err();
        assert!(e.to_string().contains("branch"), "{e}");
    }

    #[test]
    fn parse_rejects_statement_outside_block() {
        let text = "program x\nentry fn0\nfunc main() {\n  op0: v0 = iconst 1\n}\n";
        let e = parse_program(text).unwrap_err();
        assert!(e.to_string().contains("outside"), "{e}");
    }

    #[test]
    fn parsed_program_executes() {
        let text = "\
program tiny
entry fn0
  obj0: global g (8 bytes)
func main() {
bb0 (entry):
  op0: v0 = addrof obj0
  op1: v1 = iconst 21
  op2: v2 = add v1, v1
  op3: store.4 v0, v2
  op4: v3 = load.4 v0
  op5: ret v3
  -> return v3
}
";
        let p = parse_program(text).unwrap();
        crate::verify::verify_program(&p).unwrap();
        assert_eq!(p.num_ops(), 6);
    }
}
