//! IR well-formedness verification.

use crate::block::Terminator;
use crate::func::Function;
use crate::ids::{EntityId, FuncId, ObjectId, OpId};
use crate::opcode::Opcode;
use crate::program::Program;
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// An IR verification failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyError {
    /// Function in which the problem was found, if applicable.
    pub func: Option<FuncId>,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.func {
            Some(id) => write!(f, "in {id}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl Error for VerifyError {}

fn err(func: Option<FuncId>, message: impl Into<String>) -> VerifyError {
    VerifyError { func, message: message.into() }
}

/// Verifies a whole program.
///
/// # Errors
///
/// Returns the first structural problem found: bad operand arity,
/// out-of-range registers/objects/functions/blocks, unterminated blocks,
/// operations owned by no or several blocks, or use of a register that is
/// never defined and is not a parameter.
pub fn verify_program(program: &Program) -> Result<(), VerifyError> {
    if program.entry.index() >= program.functions.len() {
        return Err(err(None, "entry function out of range"));
    }
    for (fid, func) in program.functions.iter() {
        verify_function(program, fid, func)?;
    }
    Ok(())
}

fn verify_function(program: &Program, fid: FuncId, func: &Function) -> Result<(), VerifyError> {
    let fe = |m: String| err(Some(fid), m);
    if func.entry.index() >= func.blocks.len() {
        return Err(fe(format!(
            "entry block {} out of range ({} blocks)",
            func.entry,
            func.blocks.len()
        )));
    }
    // Every op appears in exactly one block at the position its backref says.
    let mut seen: HashSet<OpId> = HashSet::new();
    for (bid, block) in func.blocks.iter() {
        for &op_id in &block.ops {
            if op_id.index() >= func.ops.len() {
                return Err(fe(format!("block {bid} references out-of-range {op_id}")));
            }
            if !seen.insert(op_id) {
                return Err(fe(format!("{op_id} appears in more than one block")));
            }
            if func.ops[op_id].block != bid {
                return Err(fe(format!(
                    "{op_id} backref says {} but lives in {bid}",
                    func.ops[op_id].block
                )));
            }
        }
        match &block.term {
            None => return Err(fe(format!("block {bid} is unterminated"))),
            Some(t) => {
                for succ in t.successors() {
                    if succ.index() >= func.blocks.len() {
                        return Err(fe(format!("block {bid} branches to out-of-range {succ}")));
                    }
                }
                if let Terminator::Branch { cond, .. } = t {
                    if cond.index() >= func.num_vregs {
                        return Err(fe(format!("block {bid} branch cond out of range")));
                    }
                }
            }
        }
    }
    if seen.len() != func.ops.len() {
        return Err(fe(format!(
            "{} ops exist but only {} are placed in blocks",
            func.ops.len(),
            seen.len()
        )));
    }
    // Per-op checks.
    let mut defined: Vec<bool> = vec![false; func.num_vregs];
    for &p in &func.params {
        if p.index() >= func.num_vregs {
            return Err(fe("parameter register out of range".to_string()));
        }
        defined[p.index()] = true;
    }
    for (oid, op) in func.ops.iter() {
        if let Some(n) = op.opcode.num_dsts() {
            if op.dsts.len() != n {
                return Err(fe(format!(
                    "{oid} ({}) has {} dsts, expected {n}",
                    op.opcode,
                    op.dsts.len()
                )));
            }
        }
        if let Some(n) = op.opcode.num_srcs() {
            if op.srcs.len() != n {
                return Err(fe(format!(
                    "{oid} ({}) has {} srcs, expected {n}",
                    op.opcode,
                    op.srcs.len()
                )));
            }
        }
        for &r in op.dsts.iter().chain(op.srcs.iter()) {
            if r.index() >= func.num_vregs {
                return Err(fe(format!("{oid} references out-of-range register {r}")));
            }
        }
        for &d in &op.dsts {
            defined[d.index()] = true;
        }
        match op.opcode {
            Opcode::AddrOf(obj) | Opcode::Malloc(obj) => {
                check_object(program, fid, oid, obj)?;
            }
            Opcode::Call(callee) => {
                if callee.index() >= program.functions.len() {
                    return Err(fe(format!("{oid} calls out-of-range function {callee}")));
                }
                let target = &program.functions[callee];
                if op.srcs.len() != target.params.len() {
                    return Err(fe(format!(
                        "{oid} passes {} args to {} which takes {}",
                        op.srcs.len(),
                        target.name,
                        target.params.len()
                    )));
                }
            }
            _ => {}
        }
    }
    // All used registers must be defined somewhere (any def or param).
    for (oid, op) in func.ops.iter() {
        for &s in &op.srcs {
            if !defined[s.index()] {
                return Err(fe(format!("{oid} uses register {s} that is never defined")));
            }
        }
    }
    // Regions, if declared, must reference valid blocks and not repeat them.
    let mut covered: HashSet<crate::ids::BlockId> = HashSet::new();
    for region in func.regions.values() {
        for &b in &region.blocks {
            if b.index() >= func.blocks.len() {
                return Err(fe(format!("region '{}' references out-of-range {b}", region.name)));
            }
            if !covered.insert(b) {
                return Err(fe(format!("block {b} appears in more than one region")));
            }
        }
    }
    Ok(())
}

fn check_object(
    program: &Program,
    fid: FuncId,
    oid: OpId,
    obj: ObjectId,
) -> Result<(), VerifyError> {
    if obj.index() >= program.objects.len() {
        return Err(err(Some(fid), format!("{oid} references out-of-range object {obj}")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ids::VReg;
    use crate::object::DataObject;
    use crate::op::Op;
    use crate::opcode::{IntBinOp, MemWidth};

    fn small_valid_program() -> Program {
        let mut p = Program::new("t");
        let obj = p.add_object(DataObject::global("g", 8));
        let mut b = FunctionBuilder::entry(&mut p);
        let a = b.addrof(obj);
        let v = b.load(MemWidth::B4, a);
        b.ret(Some(v));
        p
    }

    #[test]
    fn valid_program_verifies() {
        verify_program(&small_valid_program()).expect("should verify");
    }

    #[test]
    fn zero_block_function_rejected() {
        // A parsed function may arrive with no blocks at all; the entry
        // block reference must be validated or every downstream consumer
        // (interpreter, scheduler) panics on it.
        let mut p = Program::new("t");
        p.functions[p.entry].blocks = crate::ids::EntityMap::new();
        let e = verify_program(&p).unwrap_err();
        assert!(e.to_string().contains("entry block"), "{e}");
    }

    #[test]
    fn unterminated_block_rejected() {
        let mut p = Program::new("t");
        let f = &mut p.functions[p.entry];
        f.add_block("dangling");
        // entry unterminated too
        let e = verify_program(&p).unwrap_err();
        assert!(e.to_string().contains("unterminated"), "{e}");
    }

    #[test]
    fn bad_arity_rejected() {
        let mut p = small_valid_program();
        let f = &mut p.functions[p.entry];
        let entry = f.entry;
        // Temporarily clear terminator to append a malformed op.
        f.blocks[entry].term = None;
        let v = f.new_vreg();
        f.append_op(entry, Op::new(Opcode::IntBin(IntBinOp::Add), vec![v], vec![v]));
        f.blocks[entry].term = Some(Terminator::Return(None));
        let e = verify_program(&p).unwrap_err();
        assert!(e.to_string().contains("srcs"), "{e}");
    }

    #[test]
    fn undefined_use_rejected() {
        let mut p = Program::new("t");
        let f = &mut p.functions[p.entry];
        let entry = f.entry;
        f.num_vregs = 2;
        f.append_op(entry, Op::new(Opcode::Move, vec![VReg(0)], vec![VReg(1)]));
        f.blocks[entry].term = Some(Terminator::Return(None));
        let e = verify_program(&p).unwrap_err();
        assert!(e.to_string().contains("never defined"), "{e}");
    }

    #[test]
    fn out_of_range_object_rejected() {
        let mut p = Program::new("t");
        let f = &mut p.functions[p.entry];
        let entry = f.entry;
        let v = f.new_vreg();
        f.append_op(entry, Op::new(Opcode::AddrOf(ObjectId(9)), vec![v], vec![]));
        f.blocks[entry].term = Some(Terminator::Return(None));
        let e = verify_program(&p).unwrap_err();
        assert!(e.to_string().contains("object"), "{e}");
    }

    #[test]
    fn duplicate_region_block_rejected() {
        let mut p = small_valid_program();
        let f = &mut p.functions[p.entry];
        let entry = f.entry;
        f.add_region("a", vec![entry]);
        f.add_region("b", vec![entry]);
        let e = verify_program(&p).unwrap_err();
        assert!(e.to_string().contains("more than one region"), "{e}");
    }

    #[test]
    fn call_arity_checked() {
        let mut p = Program::new("t");
        let callee = {
            let mut cb = FunctionBuilder::new_function(&mut p, "h");
            let a = cb.param();
            cb.ret(Some(a));
            cb.func_id()
        };
        let mut b = FunctionBuilder::entry(&mut p);
        b.call(callee, vec![], 1); // wrong: callee takes 1 arg
        b.ret(None);
        let e = verify_program(&p).unwrap_err();
        assert!(e.to_string().contains("args"), "{e}");
    }
}
