//! Whole programs: functions + data objects.

use crate::func::Function;
use crate::ids::{EntityMap, FuncId, ObjectId};
use crate::object::DataObject;

/// A whole program: the unit the first-pass (global) data partitioner
/// operates on.
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    /// Program name (usually the benchmark name).
    pub name: String,
    /// All functions.
    pub functions: EntityMap<FuncId, Function>,
    /// All data objects (globals and heap allocation sites).
    pub objects: EntityMap<ObjectId, DataObject>,
    /// Entry function.
    pub entry: FuncId,
}

impl Program {
    /// Creates a program containing a single empty entry function named
    /// `main`.
    pub fn new(name: impl Into<String>) -> Self {
        let mut functions = EntityMap::new();
        let entry = functions.push(Function::new("main"));
        Program { name: name.into(), functions, objects: EntityMap::new(), entry }
    }

    /// Adds a function, returning its id.
    pub fn add_function(&mut self, func: Function) -> FuncId {
        self.functions.push(func)
    }

    /// Registers a data object, returning its id.
    pub fn add_object(&mut self, object: DataObject) -> ObjectId {
        self.objects.push(object)
    }

    /// The entry function.
    pub fn entry_function(&self) -> &Function {
        &self.functions[self.entry]
    }

    /// Total operation count over all functions.
    pub fn num_ops(&self) -> usize {
        self.functions.values().map(Function::num_ops).sum()
    }

    /// Total data footprint in bytes over all objects.
    pub fn total_object_size(&self) -> u64 {
        self.objects.values().map(|o| o.size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_program_has_main() {
        let p = Program::new("bench");
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.entry_function().name, "main");
        assert_eq!(p.num_ops(), 0);
    }

    #[test]
    fn object_size_accumulates() {
        let mut p = Program::new("bench");
        p.add_object(DataObject::global("a", 100));
        p.add_object(DataObject::global("b", 28));
        assert_eq!(p.total_object_size(), 128);
    }
}
