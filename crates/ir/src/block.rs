//! Basic blocks and terminators.

use crate::ids::{BlockId, OpId, VReg};

/// How control leaves a basic block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Terminator {
    /// Unconditional jump to `target`.
    Jump(BlockId),
    /// Two-way branch: if `cond != 0` go to `then_block`, else
    /// `else_block`. `cond` must be defined by an operation in this block
    /// or be live-in.
    Branch {
        /// Condition register (nonzero = taken).
        cond: VReg,
        /// Taken successor.
        then_block: BlockId,
        /// Fall-through successor.
        else_block: BlockId,
    },
    /// Return from the function, optionally yielding a value.
    Return(Option<VReg>),
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch { then_block, else_block, .. } => vec![*then_block, *else_block],
            Terminator::Return(_) => Vec::new(),
        }
    }
}

/// A basic block: a straight-line sequence of operations ended by a
/// [`Terminator`].
#[derive(Clone, PartialEq, Debug)]
pub struct Block {
    /// Operations in program order.
    pub ops: Vec<OpId>,
    /// The terminator. `None` only during construction; the verifier
    /// rejects unterminated blocks.
    pub term: Option<Terminator>,
    /// Human-readable label (for printing).
    pub label: String,
}

impl Block {
    /// Creates an empty, unterminated block.
    pub fn new(label: impl Into<String>) -> Self {
        Block { ops: Vec::new(), term: None, label: label.into() }
    }

    /// Successor blocks (empty when unterminated).
    pub fn successors(&self) -> Vec<BlockId> {
        self.term.as_ref().map(|t| t.successors()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(BlockId(3)).successors(), vec![BlockId(3)]);
        let b =
            Terminator::Branch { cond: VReg(0), then_block: BlockId(1), else_block: BlockId(2) };
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(Terminator::Return(None).successors().is_empty());
    }

    #[test]
    fn unterminated_block_has_no_successors() {
        let b = Block::new("entry");
        assert!(b.successors().is_empty());
        assert_eq!(b.label, "entry");
    }
}
