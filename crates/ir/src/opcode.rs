//! Operation opcodes and their static properties.

use crate::ids::ObjectId;
use std::fmt;

/// Width of a memory access in bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum MemWidth {
    /// 1-byte access.
    B1,
    /// 2-byte access.
    B2,
    /// 4-byte access.
    B4,
    /// 8-byte access.
    B8,
}

impl MemWidth {
    /// Number of bytes covered by an access of this width.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

impl fmt::Display for MemWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bytes())
    }
}

/// The function-unit class an operation executes on.
///
/// Clusters provision a number of units of each kind; the scheduler's
/// resource tables are indexed by this enum.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum FuKind {
    /// Integer ALU.
    Int,
    /// Floating-point unit.
    Float,
    /// Memory (load/store) unit.
    Mem,
    /// Branch unit.
    Branch,
}

impl FuKind {
    /// All function-unit kinds, in a fixed order usable for indexing.
    pub const ALL: [FuKind; 4] = [FuKind::Int, FuKind::Float, FuKind::Mem, FuKind::Branch];

    /// Dense index of this kind within [`FuKind::ALL`].
    pub fn index(self) -> usize {
        match self {
            FuKind::Int => 0,
            FuKind::Float => 1,
            FuKind::Mem => 2,
            FuKind::Branch => 3,
        }
    }
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuKind::Int => "int",
            FuKind::Float => "float",
            FuKind::Mem => "mem",
            FuKind::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// Integer comparison predicate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cmp::Eq => "eq",
            Cmp::Ne => "ne",
            Cmp::Lt => "lt",
            Cmp::Le => "le",
            Cmp::Gt => "gt",
            Cmp::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Binary integer arithmetic/logic operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IntBinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Signed division (traps on zero in the interpreter).
    Div,
    /// Signed remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
}

impl fmt::Display for IntBinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IntBinOp::Add => "add",
            IntBinOp::Sub => "sub",
            IntBinOp::Mul => "mul",
            IntBinOp::Div => "div",
            IntBinOp::Rem => "rem",
            IntBinOp::And => "and",
            IntBinOp::Or => "or",
            IntBinOp::Xor => "xor",
            IntBinOp::Shl => "shl",
            IntBinOp::Shr => "shr",
            IntBinOp::Min => "min",
            IntBinOp::Max => "max",
        };
        f.write_str(s)
    }
}

/// Binary floating-point operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FloatBinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl fmt::Display for FloatBinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FloatBinOp::Add => "fadd",
            FloatBinOp::Sub => "fsub",
            FloatBinOp::Mul => "fmul",
            FloatBinOp::Div => "fdiv",
        };
        f.write_str(s)
    }
}

/// An IR operation code.
///
/// Operand/result arity conventions are documented per variant; the
/// [`crate::verify_program`] function enforces them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Opcode {
    /// `dst = imm`. No sources. Executes on an integer unit.
    ConstInt(i64),
    /// `dst = imm` (bit pattern of an `f64`). No sources. Float unit.
    ConstFloat(u64),
    /// `dst = &object` — materializes the base address of a static data
    /// object. No sources. Integer unit.
    AddrOf(ObjectId),
    /// `dst = op(src0, src1)` integer arithmetic. Integer unit.
    IntBin(IntBinOp),
    /// `dst = cmp(src0, src1)` producing 0/1. Integer unit.
    IntCmp(Cmp),
    /// `dst = select(src0 != 0 ? src1 : src2)`. Integer unit.
    Select,
    /// `dst = fop(src0, src1)` float arithmetic. Float unit.
    FloatBin(FloatBinOp),
    /// `dst = fcmp(src0, src1)` producing integer 0/1. Float unit.
    FloatCmp(Cmp),
    /// `dst = int-to-float(src0)`. Float unit.
    IntToFloat,
    /// `dst = float-to-int(src0)` (truncating). Float unit.
    FloatToInt,
    /// `dst = load [src0]`; `src0` is an address. Memory unit.
    Load(MemWidth),
    /// `store [src0] = src1`; `src0` is an address, `src1` the value.
    /// No destinations. Memory unit.
    Store(MemWidth),
    /// `dst = malloc(src0 bytes)` from the allocation site `ObjectId`.
    /// Memory unit (models the call overhead as a memory operation).
    Malloc(ObjectId),
    /// `dst = src0` register copy. Integer unit. The partitioner also
    /// uses `Move` for intercluster transfers; those are scheduled on the
    /// intercluster network rather than an integer unit.
    Move,
    /// Branch condition evaluation feeding the block terminator:
    /// consumes `src0`, no destination. Branch unit.
    BranchCond,
    /// Unconditional control transfer placeholder scheduled on the
    /// branch unit (one per block with a jump terminator). No operands.
    Jump,
    /// Call to another function: `dsts = call fn(srcs)`. Branch unit.
    Call(crate::ids::FuncId),
    /// Function return: consumes optional `src0`. Branch unit.
    Ret,
}

impl Opcode {
    /// The function-unit class this opcode occupies.
    pub fn fu_kind(self) -> FuKind {
        match self {
            Opcode::ConstInt(_)
            | Opcode::AddrOf(_)
            | Opcode::IntBin(_)
            | Opcode::IntCmp(_)
            | Opcode::Select
            | Opcode::Move => FuKind::Int,
            Opcode::ConstFloat(_)
            | Opcode::FloatBin(_)
            | Opcode::FloatCmp(_)
            | Opcode::IntToFloat
            | Opcode::FloatToInt => FuKind::Float,
            Opcode::Load(_) | Opcode::Store(_) | Opcode::Malloc(_) => FuKind::Mem,
            Opcode::BranchCond | Opcode::Jump | Opcode::Call(_) | Opcode::Ret => FuKind::Branch,
        }
    }

    /// Returns `true` for loads, stores and mallocs — the operations the
    /// data partitioner anchors to data objects.
    pub fn is_memory(self) -> bool {
        matches!(self, Opcode::Load(_) | Opcode::Store(_) | Opcode::Malloc(_))
    }

    /// Returns `true` if this opcode reads data memory.
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Load(_))
    }

    /// Returns `true` if this opcode writes data memory.
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Store(_))
    }

    /// Returns `true` for control-flow opcodes (branch unit).
    pub fn is_control(self) -> bool {
        matches!(self, Opcode::BranchCond | Opcode::Jump | Opcode::Call(_) | Opcode::Ret)
    }

    /// Expected number of destination registers, or `None` if variable
    /// (calls).
    pub fn num_dsts(self) -> Option<usize> {
        match self {
            Opcode::Store(_) | Opcode::BranchCond | Opcode::Jump | Opcode::Ret => Some(0),
            Opcode::Call(_) => None,
            _ => Some(1),
        }
    }

    /// Expected number of source registers, or `None` if variable
    /// (calls, ret).
    pub fn num_srcs(self) -> Option<usize> {
        match self {
            Opcode::ConstInt(_) | Opcode::ConstFloat(_) | Opcode::AddrOf(_) | Opcode::Jump => {
                Some(0)
            }
            Opcode::IntBin(_)
            | Opcode::IntCmp(_)
            | Opcode::FloatBin(_)
            | Opcode::FloatCmp(_)
            | Opcode::Store(_) => Some(2),
            Opcode::Select => Some(3),
            Opcode::IntToFloat
            | Opcode::FloatToInt
            | Opcode::Load(_)
            | Opcode::Malloc(_)
            | Opcode::Move
            | Opcode::BranchCond => Some(1),
            Opcode::Call(_) | Opcode::Ret => None,
        }
    }

    /// A short mnemonic for printing.
    pub fn mnemonic(self) -> String {
        match self {
            Opcode::ConstInt(v) => format!("iconst {v}"),
            Opcode::ConstFloat(bits) => format!("fconst {}", f64::from_bits(bits)),
            Opcode::AddrOf(o) => format!("addrof {o}"),
            Opcode::IntBin(op) => op.to_string(),
            Opcode::IntCmp(c) => format!("icmp.{c}"),
            Opcode::Select => "select".to_string(),
            Opcode::FloatBin(op) => op.to_string(),
            Opcode::FloatCmp(c) => format!("fcmp.{c}"),
            Opcode::IntToFloat => "itof".to_string(),
            Opcode::FloatToInt => "ftoi".to_string(),
            Opcode::Load(w) => format!("load.{w}"),
            Opcode::Store(w) => format!("store.{w}"),
            Opcode::Malloc(o) => format!("malloc {o}"),
            Opcode::Move => "mov".to_string(),
            Opcode::BranchCond => "brc".to_string(),
            Opcode::Jump => "jmp".to_string(),
            Opcode::Call(f) => format!("call {f}"),
            Opcode::Ret => "ret".to_string(),
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fu_kind_classification() {
        assert_eq!(Opcode::IntBin(IntBinOp::Add).fu_kind(), FuKind::Int);
        assert_eq!(Opcode::FloatBin(FloatBinOp::Mul).fu_kind(), FuKind::Float);
        assert_eq!(Opcode::Load(MemWidth::B4).fu_kind(), FuKind::Mem);
        assert_eq!(Opcode::Ret.fu_kind(), FuKind::Branch);
    }

    #[test]
    fn memory_predicates() {
        assert!(Opcode::Load(MemWidth::B1).is_memory());
        assert!(Opcode::Store(MemWidth::B8).is_memory());
        assert!(Opcode::Malloc(ObjectId(0)).is_memory());
        assert!(!Opcode::Move.is_memory());
        assert!(Opcode::Load(MemWidth::B1).is_load());
        assert!(!Opcode::Load(MemWidth::B1).is_store());
    }

    #[test]
    fn arity_conventions() {
        assert_eq!(Opcode::Store(MemWidth::B4).num_dsts(), Some(0));
        assert_eq!(Opcode::Store(MemWidth::B4).num_srcs(), Some(2));
        assert_eq!(Opcode::Select.num_srcs(), Some(3));
        assert_eq!(Opcode::Call(crate::ids::FuncId(0)).num_srcs(), None);
    }

    #[test]
    fn fu_kind_index_matches_all() {
        for (i, k) in FuKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn mnemonics_are_nonempty() {
        let ops = [
            Opcode::ConstInt(3),
            Opcode::ConstFloat(1.5f64.to_bits()),
            Opcode::AddrOf(ObjectId(1)),
            Opcode::Select,
            Opcode::Jump,
        ];
        for op in ops {
            assert!(!op.mnemonic().is_empty());
            assert_eq!(op.to_string(), op.mnemonic());
        }
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::B1.bytes(), 1);
        assert_eq!(MemWidth::B2.bytes(), 2);
        assert_eq!(MemWidth::B4.bytes(), 4);
        assert_eq!(MemWidth::B8.bytes(), 8);
    }
}
