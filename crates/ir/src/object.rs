//! Data objects: the entities the data partitioner places in cluster
//! memories.

use std::fmt;

/// Whether a data object is statically allocated or a heap allocation
/// site.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ObjectKind {
    /// A static global variable (scalar, array or structure). Its size
    /// is known from its type.
    Global,
    /// A `malloc()` call site. Its size is discovered by heap profiling
    /// (the sum of bytes allocated by the site over a profiling run).
    HeapSite,
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectKind::Global => f.write_str("global"),
            ObjectKind::HeapSite => f.write_str("heap"),
        }
    }
}

/// A data object.
///
/// Composite objects (arrays, structures) are indivisible: the paper
/// never splits a single object across cluster memories, and neither do
/// we. The object's `size` is the quantity the partitioner balances
/// across clusters.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DataObject {
    /// Human-readable name (e.g. `stepsizeTable`).
    pub name: String,
    /// Global variable vs heap allocation site.
    pub kind: ObjectKind,
    /// Size in bytes. For heap sites this starts at 0 and is filled in
    /// by heap profiling.
    pub size: u64,
}

impl DataObject {
    /// Creates a global object of `size` bytes.
    pub fn global(name: impl Into<String>, size: u64) -> Self {
        DataObject { name: name.into(), kind: ObjectKind::Global, size }
    }

    /// Creates a heap allocation site; its size is established later by
    /// profiling.
    pub fn heap_site(name: impl Into<String>) -> Self {
        DataObject { name: name.into(), kind: ObjectKind::HeapSite, size: 0 }
    }
}

impl fmt::Display for DataObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} ({} bytes)", self.kind, self.name, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_object_has_size() {
        let o = DataObject::global("table", 356);
        assert_eq!(o.kind, ObjectKind::Global);
        assert_eq!(o.size, 356);
        assert_eq!(o.to_string(), "global table (356 bytes)");
    }

    #[test]
    fn heap_site_starts_unsized() {
        let o = DataObject::heap_site("buf");
        assert_eq!(o.kind, ObjectKind::HeapSite);
        assert_eq!(o.size, 0);
    }
}
