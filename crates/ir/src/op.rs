//! Operations: the nodes of the data-flow graph.

use crate::ids::{BlockId, OpId, VReg};
use crate::opcode::Opcode;

/// A single IR operation.
///
/// Operations live in a per-function arena ([`crate::Function::ops`]) and
/// are referenced from basic blocks by [`OpId`]. All operands are virtual
/// registers; constants are materialized by dedicated
/// [`Opcode::ConstInt`]/[`Opcode::ConstFloat`] operations so that every
/// data dependence is an explicit register edge (this is what the
/// program-level DFG of the paper's first pass requires).
#[derive(Clone, PartialEq, Debug)]
pub struct Op {
    /// The opcode.
    pub opcode: Opcode,
    /// Destination registers (results).
    pub dsts: Vec<VReg>,
    /// Source registers (operands).
    pub srcs: Vec<VReg>,
    /// The block containing this operation.
    pub block: BlockId,
}

impl Op {
    /// Creates an operation. The containing block is patched in by the
    /// builder when the op is appended to a block.
    pub fn new(opcode: Opcode, dsts: Vec<VReg>, srcs: Vec<VReg>) -> Self {
        Op { opcode, dsts, srcs, block: BlockId(u32::MAX) }
    }

    /// The single destination register.
    ///
    /// # Panics
    ///
    /// Panics if the operation does not have exactly one destination.
    pub fn dst(&self) -> VReg {
        assert_eq!(self.dsts.len(), 1, "operation has {} destinations", self.dsts.len());
        self.dsts[0]
    }
}

/// A lightweight reference to an operation's position in its block, used
/// for deterministic ordering of schedule output.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OpRef {
    /// The operation.
    pub op: OpId,
    /// Its index within the block's op list.
    pub pos: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::IntBinOp;

    #[test]
    fn dst_returns_single_destination() {
        let op = Op::new(Opcode::IntBin(IntBinOp::Add), vec![VReg(5)], vec![VReg(1), VReg(2)]);
        assert_eq!(op.dst(), VReg(5));
    }

    #[test]
    #[should_panic(expected = "destinations")]
    fn dst_panics_without_destination() {
        let op = Op::new(Opcode::Ret, vec![], vec![]);
        let _ = op.dst();
    }
}
