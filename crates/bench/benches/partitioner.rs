//! Criterion benchmarks for the partitioning substrates: the
//! METIS-style graph partitioner on grids, and the full RHOP pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcpart_analysis::{AccessInfo, PointsTo};
use mcpart_core::{rhop_partition, RhopConfig};
use mcpart_ir::EntityMap;
use mcpart_machine::Machine;
use mcpart_metis::{partition, GraphBuilder, PartitionConfig};

fn grid_graph(n: usize) -> mcpart_metis::Graph {
    let mut b = GraphBuilder::new(1);
    for _ in 0..n * n {
        b.add_vertex(&[1]);
    }
    for y in 0..n {
        for x in 0..n {
            let v = (y * n + x) as u32;
            if x + 1 < n {
                b.add_edge(v, v + 1, 1);
            }
            if y + 1 < n {
                b.add_edge(v, v + n as u32, 1);
            }
        }
    }
    b.build()
}

fn metis_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("metis_kway");
    group.sample_size(20);
    for n in [16usize, 32, 64] {
        let g = grid_graph(n);
        group.bench_with_input(BenchmarkId::new("grid", n * n), &g, |b, g| {
            b.iter(|| partition(g, &PartitionConfig::new(2)))
        });
    }
    group.finish();
}

fn rhop_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("rhop");
    group.sample_size(10);
    let machine = Machine::paper_2cluster(5);
    for name in ["rawcaudio", "fft"] {
        let w = mcpart_workloads::by_name(name).expect("known benchmark");
        let pts = PointsTo::compute(&w.program);
        let access = AccessInfo::compute(&w.program, &pts, &w.profile);
        let homes = EntityMap::with_default(w.program.objects.len(), None);
        group.bench_function(BenchmarkId::new("unified", name), |b| {
            b.iter(|| {
                rhop_partition(
                    &w.program,
                    &access,
                    &w.profile,
                    &machine,
                    &homes,
                    &RhopConfig::default(),
                )
            })
        });
    }
    group.finish();
}

fn scheduler_bench(c: &mut Criterion) {
    use mcpart_sched::{schedule_block, Placement, RegionEstimator};
    let mut group = c.benchmark_group("scheduler");
    let machine = Machine::paper_2cluster(5);
    let w = mcpart_workloads::by_name("cjpeg").expect("known benchmark");
    let program = w.profile.apply_heap_sizes(&w.program);
    let pts = PointsTo::compute(&program);
    let access = AccessInfo::compute(&program, &pts, &w.profile);
    let placement = Placement::all_on_cluster0(&program);
    // Hottest (largest) block.
    let fid = program.entry;
    let (bid, block) = program.functions[fid]
        .blocks
        .iter()
        .max_by_key(|(_, b)| b.ops.len())
        .expect("nonempty");
    group.bench_function(format!("list_schedule/{}ops", block.ops.len()), |b| {
        b.iter(|| schedule_block(&program, fid, bid, &placement, &machine, &access))
    });
    let est = RegionEstimator::new(&program, fid, &[bid], &access, &machine);
    let assign: Vec<u16> = (0..est.len()).map(|i| (i % 2) as u16).collect();
    group.bench_function(format!("estimate/{}ops", est.len()), |b| {
        b.iter(|| est.estimate(&assign))
    });
    group.finish();
}

fn interpreter_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpreter");
    group.sample_size(10);
    for name in ["rawcaudio", "matmul"] {
        let w = mcpart_workloads::by_name(name).expect("known benchmark");
        group.bench_function(name, |b| {
            b.iter(|| {
                mcpart_sim::run(&w.program, &[], mcpart_sim::ExecConfig::default())
                    .expect("runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, metis_bench, rhop_bench, scheduler_bench, interpreter_bench);
criterion_main!(benches);
