//! Benchmarks for the partitioning substrates: the METIS-style graph
//! partitioner on grids, the full RHOP pass, the list scheduler and its
//! estimator, and the functional interpreter.
//!
//! Plain timing harness (`harness = false`): run with
//! `cargo bench -p mcpart-bench --bench partitioner`.

use mcpart_analysis::{AccessInfo, PointsTo};
use mcpart_core::{rhop_partition, RhopConfig};
use mcpart_ir::EntityMap;
use mcpart_machine::Machine;
use mcpart_metis::{partition, GraphBuilder, PartitionConfig};
use std::time::{Duration, Instant};

fn grid_graph(n: usize) -> mcpart_metis::Graph {
    let mut b = GraphBuilder::new(1);
    for _ in 0..n * n {
        b.add_vertex(&[1]);
    }
    for y in 0..n {
        for x in 0..n {
            let v = (y * n + x) as u32;
            if x + 1 < n {
                b.add_edge(v, v + 1, 1);
            }
            if y + 1 < n {
                b.add_edge(v, v + n as u32, 1);
            }
        }
    }
    b.build()
}

fn time<F: FnMut()>(label: &str, iters: u32, mut f: F) {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let mean: Duration = start.elapsed() / iters;
    println!("{label:<40} {mean:>12.3?}");
}

fn metis_bench() {
    for n in [16usize, 32, 64] {
        let g = grid_graph(n);
        time(&format!("metis_kway/grid/{}", n * n), 20, || {
            partition(&g, &PartitionConfig::new(2)).expect("grid partitions");
        });
    }
}

fn rhop_bench() {
    let machine = Machine::paper_2cluster(5);
    for name in ["rawcaudio", "fft"] {
        let w = mcpart_workloads::by_name(name).expect("known benchmark");
        let pts = PointsTo::compute(&w.program);
        let access = AccessInfo::compute(&w.program, &pts, &w.profile);
        let homes = EntityMap::with_default(w.program.objects.len(), None);
        time(&format!("rhop/unified/{name}"), 10, || {
            rhop_partition(
                &w.program,
                &access,
                &w.profile,
                &machine,
                &homes,
                &RhopConfig::default(),
            )
            .expect("rhop succeeds on shipped workloads");
        });
    }
}

fn scheduler_bench() {
    use mcpart_sched::{schedule_block, Placement, RegionEstimator};
    let machine = Machine::paper_2cluster(5);
    let w = mcpart_workloads::by_name("cjpeg").expect("known benchmark");
    let program = w.profile.apply_heap_sizes(&w.program);
    let pts = PointsTo::compute(&program);
    let access = AccessInfo::compute(&program, &pts, &w.profile);
    let placement = Placement::all_on_cluster0(&program);
    // Hottest (largest) block.
    let fid = program.entry;
    let (bid, block) =
        program.functions[fid].blocks.iter().max_by_key(|(_, b)| b.ops.len()).expect("nonempty");
    time(&format!("scheduler/list_schedule/{}ops", block.ops.len()), 50, || {
        schedule_block(&program, fid, bid, &placement, &machine, &access);
    });
    let est = RegionEstimator::new(&program, fid, &[bid], &access, &machine);
    let assign: Vec<u16> = (0..est.len()).map(|i| (i % 2) as u16).collect();
    time(&format!("scheduler/estimate/{}ops", est.len()), 200, || {
        est.estimate(&assign);
    });
}

fn interpreter_bench() {
    for name in ["rawcaudio", "matmul"] {
        let w = mcpart_workloads::by_name(name).expect("known benchmark");
        time(&format!("interpreter/{name}"), 10, || {
            mcpart_sim::run(&w.program, &[], mcpart_sim::ExecConfig::default()).expect("runs");
        });
    }
}

fn main() {
    println!("{:<40} {:>12}", "benchmark", "mean time");
    metis_bench();
    rhop_bench();
    scheduler_bench();
    interpreter_bench();
}
