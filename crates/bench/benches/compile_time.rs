//! Benchmark for §4.5: partitioning compile time of the three schemes.
//! Profile Max should cost roughly two GDP runs.
//!
//! Plain timing harness (`harness = false`): run with
//! `cargo bench -p mcpart-bench --bench compile_time`.

use mcpart_core::{run_pipeline, Method, PipelineConfig};
use mcpart_machine::Machine;
use std::time::Instant;

fn main() {
    let machine = Machine::paper_2cluster(5);
    let iters = 5;
    println!("{:<12} {:>12} {:>14}", "benchmark", "method", "mean time");
    for name in ["rawcaudio", "fir", "mpeg2enc"] {
        let w = mcpart_workloads::by_name(name).expect("known benchmark");
        for method in [Method::Gdp, Method::ProfileMax, Method::Naive] {
            let start = Instant::now();
            for _ in 0..iters {
                run_pipeline(&w.program, &w.profile, &machine, &PipelineConfig::new(method))
                    .expect("pipeline succeeds on shipped workloads");
            }
            let mean = start.elapsed() / iters;
            println!("{:<12} {:>12} {:>12.3?}", name, method.to_string(), mean);
        }
    }
}
