//! Criterion benchmark for §4.5: partitioning compile time of the three
//! schemes. Profile Max should cost roughly two GDP runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcpart_core::{run_pipeline, Method, PipelineConfig};
use mcpart_machine::Machine;

fn compile_time(c: &mut Criterion) {
    let machine = Machine::paper_2cluster(5);
    let mut group = c.benchmark_group("compile_time");
    group.sample_size(10);
    for name in ["rawcaudio", "fir", "mpeg2enc"] {
        let w = mcpart_workloads::by_name(name).expect("known benchmark");
        for method in [Method::Gdp, Method::ProfileMax, Method::Naive] {
            group.bench_with_input(
                BenchmarkId::new(format!("{method}"), name),
                &w,
                |b, w| {
                    b.iter(|| {
                        run_pipeline(
                            &w.program,
                            &w.profile,
                            &machine,
                            &PipelineConfig::new(method),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, compile_time);
criterion_main!(benches);
