//! Background experiment after Terechko et al. (cited in §2): the
//! fraction of the Naïve method's intercluster move traffic that serves
//! data accesses, alongside its cycle overhead.

use mcpart_bench::experiments::ext_terechko;
use mcpart_bench::report::{pct, render_table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (workloads, _) = mcpart_bench::parse_args(&args);
    let rows = ext_terechko(&workloads);
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.benchmark.clone(), pct(r.data_move_fraction), pct(r.overhead)])
        .collect();
    let n = rows.len().max(1) as f64;
    table.push(vec![
        "average".to_string(),
        pct(rows.iter().map(|r| r.data_move_fraction).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.overhead).sum::<f64>() / n),
    ]);
    print!(
        "{}",
        render_table(
            "Data-related share of Naive intercluster moves (5-cycle latency)",
            &["benchmark", "data moves", "cycle overhead"],
            &table,
        )
    );
}
