//! Regenerates Figure 2: percentage increase in cycles when data is
//! naively partitioned across clusters, at 1/5/10-cycle intercluster
//! move latencies, relative to a unified memory.

use mcpart_bench::experiments::fig2;
use mcpart_bench::report::{render_table, Json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (workloads, _) = mcpart_bench::parse_args(&args);
    let latencies = [1u32, 5, 10];
    let rows = fig2(&workloads, &latencies);
    if mcpart_bench::wants_json(&args) {
        let doc = Json::Obj(vec![
            ("figure".into(), Json::Str("2".into())),
            (
                "latencies".into(),
                Json::Arr(latencies.iter().map(|&l| Json::Int(i64::from(l))).collect()),
            ),
            (
                "rows".into(),
                Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("benchmark".into(), Json::Str(r.benchmark.clone())),
                                (
                                    "increase_pct".into(),
                                    Json::Arr(
                                        r.increase_pct.iter().map(|&x| Json::Num(x)).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        println!("{}", doc.render());
        return;
    }
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.benchmark.clone()];
            cells.extend(r.increase_pct.iter().map(|p| format!("{p:+.1}%")));
            cells
        })
        .collect();
    let mut avg = vec!["average".to_string()];
    for (i, _) in latencies.iter().enumerate() {
        let a: f64 = rows.iter().map(|r| r.increase_pct[i]).sum::<f64>() / rows.len().max(1) as f64;
        avg.push(format!("{a:+.1}%"));
    }
    let mut all_rows = table_rows;
    all_rows.push(avg);
    print!(
        "{}",
        render_table(
            "Figure 2: cycle increase of Naive data placement vs unified memory",
            &["benchmark", "1-cycle", "5-cycle", "10-cycle"],
            &all_rows,
        )
    );
}
