//! Move-placement ablation: per-use-block transfers vs profile-guided
//! producer-side hoisting, under GDP at 5-cycle latency.

use mcpart_bench::experiments::ablation_hoist;
use mcpart_bench::report::render_table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (workloads, _) = mcpart_bench::parse_args(&args);
    let rows = ablation_hoist(&workloads);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                r.cycles.0.to_string(),
                r.cycles.1.to_string(),
                format!("{:+.1}%", (r.cycles.1 as f64 / r.cycles.0 as f64 - 1.0) * 100.0),
                r.moves.0.to_string(),
                r.moves.1.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Move hoisting: GDP cycles and dynamic moves (5-cycle latency)",
            &[
                "benchmark",
                "cycles/block",
                "cycles/hoisted",
                "delta",
                "moves/block",
                "moves/hoisted"
            ],
            &table,
        )
    );
}
