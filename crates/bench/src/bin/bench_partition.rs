//! Partitioning-pipeline performance benchmark: per-workload stage
//! wall-clock, estimator-call accounting (full vs pruned probes, and
//! the incremental-estimation ablation), and the suite-level parallel
//! speedup of `--jobs N` over `--jobs 1`.
//!
//! Writes a machine-readable report (default `BENCH_partition.json`,
//! override with `--out PATH`); `scripts/bench.sh` wraps this binary.
//! `--quick` runs one repetition on a three-workload subset for smoke
//! testing.

use mcpart_bench::report::Json;
use mcpart_core::{run_pipeline, Method, PipelineConfig};
use mcpart_machine::Machine;
use mcpart_workloads::Workload;
use std::time::{Duration, Instant};

struct Options {
    quick: bool,
    jobs: usize,
    out: String,
    reps: usize,
    metrics: bool,
}

fn parse_options(args: &[String]) -> Options {
    let mut opts = Options {
        quick: false,
        jobs: 0,
        out: "BENCH_partition.json".to_string(),
        reps: 3,
        metrics: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                opts.quick = true;
                opts.reps = 1;
            }
            "--metrics" => {
                opts.metrics = true;
            }
            "--jobs" => {
                if let Some(v) = args.get(i + 1) {
                    opts.jobs = v.parse().unwrap_or(0);
                    i += 1;
                }
            }
            "--out" => {
                if let Some(v) = args.get(i + 1) {
                    opts.out = v.clone();
                    i += 1;
                }
            }
            "--reps" => {
                if let Some(v) = args.get(i + 1) {
                    opts.reps = v.parse().unwrap_or(3).max(1);
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    opts
}

/// One timed pipeline run: (partition-stage wall, total wall, result).
fn timed_run(
    w: &Workload,
    machine: &Machine,
    cfg: &PipelineConfig,
) -> (Duration, Duration, mcpart_core::PipelineResult) {
    let start = Instant::now();
    let r = run_pipeline(&w.program, &w.profile, machine, cfg).expect("pipeline");
    let total = start.elapsed();
    (r.partition_time, total, r)
}

/// Best-of-`reps` wall times (minimum is the least noisy estimator on a
/// shared host).
fn best_of(
    reps: usize,
    w: &Workload,
    machine: &Machine,
    cfg: &PipelineConfig,
) -> (Duration, Duration, mcpart_core::PipelineResult) {
    let mut best: Option<(Duration, Duration, mcpart_core::PipelineResult)> = None;
    for _ in 0..reps {
        let run = timed_run(w, machine, cfg);
        if best.as_ref().map(|(_, t, _)| run.1 < *t).unwrap_or(true) {
            best = Some(run);
        }
    }
    best.expect("reps >= 1")
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// A one-function edit applied the way a developer edit lands — on the
/// textual IR: one table-mask constant of the last function
/// (`iconst 2^k - 1`, the synth generator's in-bounds index mask)
/// drops by one. The smaller mask keeps every access in bounds and
/// leaves control flow — and therefore the profile and the GDP homes —
/// untouched, so the dirty cone is exactly the edited function plus
/// its merge neighbourhood.
fn one_function_edit(program: &mcpart_ir::Program) -> mcpart_ir::Program {
    let text = mcpart_ir::program_to_string(program);
    let func_start = text.rfind("\nfunc ").map(|i| i + 1).unwrap_or(0);
    let body = &text[func_start..];
    let (at, len, k) = body
        .match_indices("= iconst ")
        .find_map(|(i, m)| {
            let at = i + m.len();
            let len = body[at..].chars().take_while(char::is_ascii_digit).count();
            let k: i64 = body[at..at + len].parse().ok()?;
            // The generator's masks are 63/127/255/511 (tables of
            // 64..512 elements); nothing else in a synth function has
            // that shape.
            ((63..=511).contains(&k) && (k + 1) & k == 0).then_some((at, len, k))
        })
        .expect("a mask constant to edit");
    let edited = format!("{}{}{}", &text[..func_start + at], k - 1, &text[func_start + at + len..]);
    let p = mcpart_ir::parse_program(&edited).expect("edited program parses");
    mcpart_ir::verify_program(&p).expect("edited program verifies");
    p
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_options(&args);
    let (mut workloads, _) = mcpart_bench::parse_args(&args);
    if opts.quick {
        workloads.truncate(3);
    }
    let jobs = mcpart_par::resolve_jobs(opts.jobs);
    let machine = Machine::paper_2cluster(5);

    let mut rows: Vec<Json> = Vec::new();
    let mut suite_seq = Duration::ZERO;
    let mut suite_seq_full = Duration::ZERO;
    for w in &workloads {
        // Incremental estimation ON (the default), sequential. With
        // `--metrics` an observability sink rides along and its final
        // counter values are folded into the report row.
        let obs =
            if opts.metrics { mcpart_obs::Obs::enabled() } else { mcpart_obs::Obs::disabled() };
        let cfg = PipelineConfig::new(Method::Gdp).with_jobs(1).with_obs(obs.clone());
        let (part, total, r) = best_of(opts.reps, w, &machine, &cfg);
        suite_seq += total;
        // Incremental estimation OFF: every probe pays a full schedule
        // simulation. Same placements, same estimator-call budget; the
        // difference is pure per-probe work.
        let mut full_cfg = PipelineConfig::new(Method::Gdp).with_jobs(1);
        full_cfg.rhop.incremental = false;
        let (_, full_total, full_r) = best_of(opts.reps, w, &machine, &full_cfg);
        suite_seq_full += full_total;
        assert_eq!(
            r.report.total_cycles, full_r.report.total_cycles,
            "incremental estimation changed {} results",
            w.name
        );
        let st = &r.rhop_stats;
        let mut row = vec![
            ("benchmark".into(), Json::Str(w.name.to_string())),
            ("partition_secs".into(), Json::Num(secs(part))),
            ("pipeline_secs".into(), Json::Num(secs(total))),
            ("pipeline_secs_no_incremental".into(), Json::Num(secs(full_total))),
            ("regions".into(), Json::Int(st.regions as i64)),
            ("estimator_calls".into(), Json::Int(st.estimator_calls as i64)),
            ("full_evals".into(), Json::Int(st.full_evals as i64)),
            ("pruned_evals".into(), Json::Int(st.pruned_evals as i64)),
            ("pruned_lock".into(), Json::Int(st.pruned_lock as i64)),
            ("pruned_bound".into(), Json::Int(st.pruned_bound as i64)),
            ("moves_accepted".into(), Json::Int(st.moves_accepted as i64)),
            ("cycles".into(), Json::Int(r.report.total_cycles as i64)),
            ("stall_cycles".into(), Json::Int(r.report.stall_cycles as i64)),
            ("transfer_cycles".into(), Json::Int(r.report.transfer_cycles as i64)),
            // Supervision accounting: unit retries plus method
            // downgrades, and the quarantine outcome. All zero on a
            // healthy suite — nonzero values in a benchmark report
            // flag that the numbers were produced on degraded paths.
            ("retries".into(), Json::Int(st.retries as i64 + r.downgrades.len() as i64)),
            ("quarantined".into(), Json::Int(st.quarantine.len() as i64)),
        ];
        if !st.quarantine.is_empty() {
            row.push((
                "quarantine".into(),
                Json::Arr(st.quarantine.names().iter().map(|n| Json::Str(n.to_string())).collect()),
            ));
        }
        if opts.metrics {
            for (counter, key) in [("cut", "gdp_cut"), ("balance_x1000", "gdp_balance_x1000")] {
                if let Some(v) = obs.last_counter("gdp", counter) {
                    row.push((key.into(), Json::Int(v)));
                }
            }
        }
        rows.push(Json::Obj(row));
        eprintln!(
            "{:<16} partition {:>8.3}s  pipeline {:>8.3}s (no-incr {:>8.3}s)  \
             probes {} = {} full + {} pruned",
            w.name,
            secs(part),
            secs(total),
            secs(full_total),
            st.estimator_calls,
            st.full_evals,
            st.pruned_evals,
        );
    }

    // Suite-level parallel speedup: the whole workload set partitioned
    // sequentially vs fanned out over `jobs` workers. Measured at the
    // suite level (workload × method stealing) because that is how the
    // experiment harness consumes the pool.
    let run_suite = |j: usize| {
        let start = Instant::now();
        let cfgs: Vec<PipelineConfig> = vec![PipelineConfig::new(Method::Gdp).with_jobs(1)];
        let pairs: Vec<(usize, usize)> =
            (0..workloads.len()).flat_map(|i| (0..cfgs.len()).map(move |c| (i, c))).collect();
        let _ = mcpart_par::parallel_map(j, &pairs, |_, &(i, c)| {
            run_pipeline(&workloads[i].program, &workloads[i].profile, &machine, &cfgs[c])
                .expect("pipeline")
                .report
                .total_cycles
        });
        start.elapsed()
    };
    let mut best_par = Duration::MAX;
    let mut best_seq = Duration::MAX;
    for _ in 0..opts.reps {
        best_seq = best_seq.min(run_suite(1));
        if jobs > 1 {
            best_par = best_par.min(run_suite(jobs));
        }
    }
    if jobs <= 1 {
        // A single worker runs the exact sequential code path; there is
        // no parallel configuration to time.
        eprintln!(
            "note: jobs=1 (host parallelism {}); speedup is 1 by construction",
            mcpart_par::available_jobs()
        );
        best_par = best_seq;
    }
    let speedup = secs(best_seq) / secs(best_par).max(1e-9);
    let incr_speedup = secs(suite_seq_full) / secs(suite_seq).max(1e-9);
    eprintln!(
        "suite: jobs=1 {:.3}s, jobs={jobs} {:.3}s -> {speedup:.2}x parallel speedup; \
         incremental estimation {incr_speedup:.2}x over full re-simulation",
        secs(best_seq),
        secs(best_par),
    );

    // Service-mode throughput: every workload spooled as a job file and
    // drained twice through the in-process serve engine. The cold pass
    // computes and caches every artifact; the warm pass must be pure
    // verified cache hits, and the warm/cold ratio is what a
    // long-lived `mcpart serve` saves a resubmitting client.
    let spool = std::env::temp_dir().join(format!("mcpart_bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    std::fs::create_dir_all(&spool).expect("serve spool");
    let loader = |name: &str| {
        mcpart_workloads::by_name(name)
            .map(|w| (w.program, w.profile))
            .ok_or_else(|| format!("unknown benchmark {name}"))
    };
    let serve_cfg = mcpart_core::ServeConfig { jobs, drain: true, ..Default::default() };
    let shutdown = std::sync::atomic::AtomicBool::new(false);
    let drain = |spool: &std::path::Path| {
        for w in &workloads {
            std::fs::write(
                spool.join(format!("{}.job", w.name)),
                format!("{{\"mcpart_job\":1,\"program\":\"{}\"}}\n", w.name),
            )
            .expect("spool job");
        }
        let start = Instant::now();
        let sum = mcpart_core::serve(spool, &serve_cfg, &loader, &shutdown).expect("serve");
        (start.elapsed(), sum)
    };
    let (serve_cold, cold_sum) = drain(&spool);
    let (serve_warm, warm_sum) = drain(&spool);
    assert_eq!(cold_sum.completed, workloads.len() as u64, "cold drain did not complete all jobs");
    assert_eq!(warm_sum.cache_hits, warm_sum.admitted, "warm drain was not all cache hits");
    let serve_admitted = cold_sum.admitted + warm_sum.admitted;
    let hit_rate = (cold_sum.cache_hits + warm_sum.cache_hits) as f64 / serve_admitted as f64;
    let warm_jobs_per_sec = workloads.len() as f64 / secs(serve_warm).max(1e-9);
    eprintln!(
        "serve: cold {:.3}s, warm {:.3}s ({} jobs, cache hit rate {:.0}%, {:.1} jobs/s warm)",
        secs(serve_cold),
        secs(serve_warm),
        workloads.len(),
        hit_rate * 100.0,
        warm_jobs_per_sec,
    );
    let _ = std::fs::remove_dir_all(&spool);

    // Incremental re-partitioning: a one-function edit against a
    // manifest baseline vs a from-scratch run of the edited program.
    // The edit is textual — the trip bound of the last function's
    // first counted loop drops by one — so it mirrors how a developer
    // edit actually lands. Speedup is measured on the partition stage,
    // the only stage replay touches.
    let spec = if opts.quick { "ops=3000,seed=3" } else { "synth_10k" };
    let base_w = mcpart_workloads::synth(spec).expect("synthetic workload");
    // Round-trip the baseline through the textual IR so its function
    // hashes are computed on the same spelling the edited program has.
    let base_p = mcpart_ir::parse_program(&mcpart_ir::program_to_string(&base_w.program))
        .expect("baseline roundtrips");
    let base_profile = mcpart_sim::profile_run(&base_p, &[], mcpart_sim::ExecConfig::default())
        .expect("baseline runs");
    let base_cfg = PipelineConfig::new(Method::Gdp).with_jobs(1);
    let base =
        run_pipeline(&base_p, &base_profile, &machine, &base_cfg).expect("baseline pipeline");
    let manifest = std::sync::Arc::new(base.manifest.clone().expect("gdp manifest"));
    let edited = one_function_edit(&base_w.program);
    let edited_profile = mcpart_sim::profile_run(&edited, &[], mcpart_sim::ExecConfig::default())
        .expect("edited program runs");
    let time_partition = |cfg: &PipelineConfig| {
        let mut best: Option<(Duration, mcpart_core::PipelineResult)> = None;
        for _ in 0..opts.reps {
            let r = run_pipeline(&edited, &edited_profile, &machine, cfg).expect("pipeline");
            if best.as_ref().map(|(t, _)| r.partition_time < *t).unwrap_or(true) {
                best = Some((r.partition_time, r));
            }
        }
        best.expect("reps >= 1")
    };
    let (scratch_secs, scratch_r) = time_partition(&PipelineConfig::new(Method::Gdp).with_jobs(1));
    let mut inc_cfg = PipelineConfig::new(Method::Gdp).with_jobs(1);
    inc_cfg.baseline = Some(manifest);
    let (inc_secs, inc_r) = time_partition(&inc_cfg);
    assert_eq!(
        scratch_r.report.total_cycles, inc_r.report.total_cycles,
        "incremental re-partitioning changed results"
    );
    let rp = inc_r.repartition.expect("repartition stats");
    let repartition_speedup = secs(scratch_secs) / secs(inc_secs).max(1e-9);
    eprintln!(
        "repartition: {spec} one-function edit, scratch {:.3}s vs incremental {:.3}s \
         -> {repartition_speedup:.2}x ({} dirty / {} replayed of {}, cone {:.1}%)",
        secs(scratch_secs),
        secs(inc_secs),
        rp.dirty_funcs,
        rp.replayed_funcs,
        rp.total_funcs,
        rp.cone_frac_x1000() as f64 / 10.0,
    );

    let doc = Json::Obj(vec![
        ("schema_version".into(), Json::Int(mcpart_bench::diff::BENCH_SCHEMA_VERSION)),
        ("benchmark".into(), Json::Str("partition-pipeline".to_string())),
        ("jobs".into(), Json::Int(jobs as i64)),
        ("quick".into(), Json::Bool(opts.quick)),
        ("metrics".into(), Json::Bool(opts.metrics)),
        ("host_parallelism".into(), Json::Int(mcpart_par::available_jobs() as i64)),
        ("workloads".into(), Json::Arr(rows)),
        ("suite_secs_sequential".into(), Json::Num(secs(best_seq))),
        ("suite_secs_parallel".into(), Json::Num(secs(best_par))),
        ("parallel_speedup".into(), Json::Num(speedup)),
        ("incremental_speedup".into(), Json::Num(incr_speedup)),
        ("serve_cold_secs".into(), Json::Num(secs(serve_cold))),
        ("serve_warm_secs".into(), Json::Num(secs(serve_warm))),
        ("serve_cache_hit_rate".into(), Json::Num(hit_rate)),
        ("serve_warm_jobs_per_sec".into(), Json::Num(warm_jobs_per_sec)),
        ("serve_admitted".into(), Json::Int(serve_admitted as i64)),
        ("serve_rejected".into(), Json::Int((cold_sum.rejected + warm_sum.rejected) as i64)),
        ("serve_cache_hits".into(), Json::Int((cold_sum.cache_hits + warm_sum.cache_hits) as i64)),
        (
            "serve_cache_evictions".into(),
            Json::Int((cold_sum.cache_evictions + warm_sum.cache_evictions) as i64),
        ),
        (
            "serve_quarantined".into(),
            Json::Int((cold_sum.quarantined + warm_sum.quarantined) as i64),
        ),
        ("repartition_scratch_secs".into(), Json::Num(secs(scratch_secs))),
        ("repartition_incremental_secs".into(), Json::Num(secs(inc_secs))),
        ("repartition_speedup".into(), Json::Num(repartition_speedup)),
        ("repartition_dirty_funcs".into(), Json::Int(rp.dirty_funcs as i64)),
        ("repartition_replayed_funcs".into(), Json::Int(rp.replayed_funcs as i64)),
        ("repartition_cone_frac_x1000".into(), Json::Int(rp.cone_frac_x1000() as i64)),
    ]);
    std::fs::write(&opts.out, doc.render() + "\n").expect("write report");
    eprintln!("wrote {}", opts.out);
}
