//! Regenerates Table 1: the object/computation partitioner matrix of
//! the four evaluated methods.

use mcpart_bench::report::render_table;

fn main() {
    let rows = vec![
        vec![
            "GDP".to_string(),
            "Global Data Partitioning".to_string(),
            "graph partition of coarsened program DFG".to_string(),
            "RHOP".to_string(),
        ],
        vec![
            "Profile Max".to_string(),
            "RHOP".to_string(),
            "greedy (dynamic frequency order)".to_string(),
            "RHOP".to_string(),
        ],
        vec![
            "Naive".to_string(),
            "none".to_string(),
            "data object moves inserted post-partitioning".to_string(),
            "RHOP".to_string(),
        ],
        vec![
            "Unified Memory".to_string(),
            "n/a".to_string(),
            "no moves required for single, unified memory".to_string(),
            "RHOP".to_string(),
        ],
    ];
    print!(
        "{}",
        render_table(
            "Table 1: object and computation partitioning methods",
            &["Algorithm", "Object Partitioner", "Object Assignment", "Computation Partitioner"],
            &rows,
        )
    );
}
