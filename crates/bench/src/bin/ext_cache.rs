//! Extension experiment: GDP on a machine with coherent per-cluster
//! caches (the paper's §2 "middle ground" and §5 future work) at
//! several remote-access penalties, vs fully partitioned memory.

use mcpart_bench::experiments::ext_cache;
use mcpart_bench::report::{f3, render_table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (workloads, _) = mcpart_bench::parse_args(&args);
    let penalties = [2u32, 5, 10];
    let rows = ext_cache(&workloads, &penalties);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.benchmark.clone(), f3(r.partitioned_rel)];
            cells.extend(r.coherent_rel.iter().map(|&x| f3(x)));
            cells.push(r.remote_accesses.iter().map(u64::to_string).collect::<Vec<_>>().join("/"));
            cells
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Coherent-cache extension: GDP perf relative to unified (5-cycle moves)",
            &["benchmark", "partitioned", "coh p=2", "coh p=5", "coh p=10", "remote accesses"],
            &table,
        )
    );
}
