//! Regenerates Figure 10: percentage increase in dynamic intercluster
//! move operations of GDP and Profile Max over the unified-memory
//! model, with 5-cycle move latency.

use mcpart_bench::experiments::fig10;
use mcpart_bench::report::{render_table, Json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (workloads, _) = mcpart_bench::parse_args(&args);
    let rows = fig10(&workloads);
    if mcpart_bench::wants_json(&args) {
        let doc = Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::Obj(vec![
                        ("benchmark".into(), Json::Str(r.benchmark.clone())),
                        ("gdp_pct".into(), Json::Num(r.gdp_pct)),
                        ("profile_max_pct".into(), Json::Num(r.profile_max_pct)),
                    ])
                })
                .collect(),
        );
        println!("{}", doc.render());
        return;
    }
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                format!("{:+.1}%", r.gdp_pct),
                format!("{:+.1}%", r.profile_max_pct),
            ]
        })
        .collect();
    let n = rows.len().max(1) as f64;
    table.push(vec![
        "average".to_string(),
        format!("{:+.1}%", rows.iter().map(|r| r.gdp_pct).sum::<f64>() / n),
        format!("{:+.1}%", rows.iter().map(|r| r.profile_max_pct).sum::<f64>() / n),
    ]);
    print!(
        "{}",
        render_table(
            "Figure 10: dynamic intercluster move increase vs unified memory (5-cycle)",
            &["benchmark", "GDP", "Profile Max"],
            &table,
        )
    );
}
