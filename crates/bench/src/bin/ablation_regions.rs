//! Region-scope ablation: RHOP with per-block regions (plus live-in
//! coordination sweeps), loop-nest regions, and whole-function regions.

use mcpart_bench::experiments::ablation_regions;
use mcpart_bench::report::{f3, render_table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (workloads, _) = mcpart_bench::parse_args(&args);
    let rows = ablation_regions(&workloads);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.benchmark.clone(), f3(r.rel.0), f3(r.rel.1), f3(r.rel.2)])
        .collect();
    print!(
        "{}",
        render_table(
            "Region scope: GDP perf relative to unified (5-cycle)",
            &["benchmark", "per-block", "loop nests", "whole function"],
            &table,
        )
    );
}
