//! Ablation of §3.3.1: GDP with the rejected dependent-operation
//! merging, and without the operation-balance constraint.

use mcpart_bench::experiments::ablation_merge;
use mcpart_bench::report::{f3, render_table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (workloads, _) = mcpart_bench::parse_args(&args);
    let rows = ablation_merge(&workloads);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![r.benchmark.clone(), f3(r.default_rel), f3(r.merged_rel), f3(r.op_balance_rel)]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Ablation 3.3.1: GDP coarsening variants (perf relative to unified, 5-cycle)",
            &["benchmark", "GDP default", "+dependent-op merge", "+op balance"],
            &table,
        )
    );
}
