//! Million-op scale trajectory: partitions synthetic programs of 10⁴,
//! 10⁵, and 10⁶ static operations end-to-end (points-to, access info,
//! object grouping, GDP) and records ops/sec, peak graph bytes, and the
//! `--jobs` scaling curve. Correctness rides along: every `--jobs`
//! level must produce a bit-identical `DataPartition`.
//!
//! Writes `BENCH_scale.json` (override with `--out PATH`), a
//! `bench-diff`-compatible artifact; `scripts/bench.sh --scale` wraps
//! this binary. `--quick` drops the 10⁶ point and runs one repetition
//! for smoke testing.

use mcpart_bench::report::Json;
use mcpart_core::{gdp_partition, DataPartition, GdpConfig, ObjectGroups};
use mcpart_machine::Machine;
use mcpart_workloads::Workload;
use std::time::{Duration, Instant};

struct Options {
    quick: bool,
    out: String,
    reps: usize,
}

fn parse_options(args: &[String]) -> Options {
    let mut opts = Options { quick: false, out: "BENCH_scale.json".to_string(), reps: 2 };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                opts.quick = true;
                opts.reps = 1;
            }
            "--out" => {
                if let Some(v) = args.get(i + 1) {
                    opts.out = v.clone();
                    i += 1;
                }
            }
            "--reps" => {
                if let Some(v) = args.get(i + 1) {
                    opts.reps = v.parse().unwrap_or(2).max(1);
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    opts
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// One end-to-end partition of a prepared workload at a given jobs
/// level: analyses plus GDP, returning the wall time and the partition.
fn partition_once(w: &Workload, machine: &Machine, jobs: usize) -> (Duration, DataPartition) {
    let start = Instant::now();
    let pts = mcpart_analysis::PointsTo::compute(&w.program);
    let access = mcpart_analysis::AccessInfo::compute(&w.program, &pts, &w.profile);
    let groups = ObjectGroups::compute(&w.program, &access);
    let cfg = GdpConfig { jobs, ..GdpConfig::default() };
    let dp = gdp_partition(&w.program, &w.profile, &access, &groups, machine, &cfg)
        .expect("gdp partition");
    (start.elapsed(), dp)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_options(&args);
    let machine = Machine::paper_2cluster(5);
    let mut points: Vec<(&str, usize)> =
        vec![("synth_10k", 10_000), ("synth_100k", 100_000), ("synth_1m", 1_000_000)];
    if opts.quick {
        points.truncate(2);
    }
    // The full curve runs even on a single-core host (the threads still
    // exercise the sharded code paths and the bit-identity asserts);
    // the recorded speedup is whatever the host's parallelism allows.
    let jobs_curve: [usize; 3] = [1, 2, 4];

    let mut rows: Vec<Json> = Vec::new();
    let mut speedup_at_max = 1.0f64;
    for &(name, target_ops) in &points {
        let gen_start = Instant::now();
        let w = mcpart_workloads::by_name(name).expect("synthetic preset");
        let gen_secs = secs(gen_start.elapsed());
        let ops = w.num_ops();

        // The jobs curve, best-of-reps per level; every level must be
        // bit-identical to the sequential partition.
        let mut level_secs: Vec<(usize, f64)> = Vec::new();
        let mut reference: Option<DataPartition> = None;
        for &jobs in &jobs_curve {
            let mut best = Duration::MAX;
            let mut dp_last = None;
            for _ in 0..opts.reps {
                let (t, dp) = partition_once(&w, &machine, jobs);
                best = best.min(t);
                dp_last = Some(dp);
            }
            let dp = dp_last.expect("reps >= 1");
            match &reference {
                None => reference = Some(dp),
                Some(r) => {
                    assert_eq!(r, &dp, "{name}: --jobs {jobs} changed the partition");
                }
            }
            level_secs.push((jobs, secs(best)));
        }
        let seq_secs = level_secs[0].1;
        let (max_jobs, par_secs) = *level_secs.last().expect("non-empty curve");
        let speedup = seq_secs / par_secs.max(1e-9);
        speedup_at_max = speedup;

        // One untimed observed run for the coarsening trajectory.
        let obs = mcpart_obs::Obs::enabled();
        let pts = mcpart_analysis::PointsTo::compute(&w.program);
        let access = mcpart_analysis::AccessInfo::compute(&w.program, &pts, &w.profile);
        let groups = ObjectGroups::compute(&w.program, &access);
        let cfg = GdpConfig { jobs: max_jobs, obs: obs.clone(), ..GdpConfig::default() };
        let _ = gdp_partition(&w.program, &w.profile, &access, &groups, &machine, &cfg)
            .expect("gdp partition");
        let peak_bytes = obs.last_counter("metis", "peak_graph_bytes").unwrap_or(0);
        let levels = obs.last_counter("metis", "coarsen_levels").unwrap_or(0);
        let cut = obs.last_counter("gdp", "cut").unwrap_or(0);

        let mut row = vec![
            ("benchmark".into(), Json::Str(name.to_string())),
            ("target_ops".into(), Json::Int(target_ops as i64)),
            ("ops".into(), Json::Int(ops as i64)),
            ("objects".into(), Json::Int(w.num_objects() as i64)),
            ("gen_secs".into(), Json::Num(gen_secs)),
            ("partition_secs".into(), Json::Num(seq_secs)),
            ("partition_secs_parallel".into(), Json::Num(par_secs)),
            ("ops_per_sec".into(), Json::Num(ops as f64 / seq_secs.max(1e-9))),
            ("parallel_speedup".into(), Json::Num(speedup)),
            ("peak_graph_bytes".into(), Json::Int(peak_bytes)),
            ("coarsen_levels".into(), Json::Int(levels)),
            ("gdp_cut".into(), Json::Int(cut)),
        ];
        for (jobs, t) in &level_secs {
            row.push((format!("secs_jobs_{jobs}"), Json::Num(*t)));
        }
        rows.push(Json::Obj(row));
        eprintln!(
            "{name:<12} {ops:>8} ops  gen {gen_secs:>6.2}s  partition jobs=1 {seq_secs:>6.2}s, \
             jobs={max_jobs} {par_secs:>6.2}s ({speedup:.2}x)  peak {peak_bytes} B, \
             {levels} levels, cut {cut}",
        );
    }

    let doc = Json::Obj(vec![
        ("schema_version".into(), Json::Int(mcpart_bench::diff::BENCH_SCHEMA_VERSION)),
        ("benchmark".into(), Json::Str("scale-trajectory".to_string())),
        ("quick".into(), Json::Bool(opts.quick)),
        ("host_parallelism".into(), Json::Int(mcpart_par::available_jobs() as i64)),
        ("workloads".into(), Json::Arr(rows)),
        ("parallel_speedup".into(), Json::Num(speedup_at_max)),
    ]);
    std::fs::write(&opts.out, doc.render() + "\n").expect("write report");
    eprintln!("wrote {}", opts.out);
}
