//! Regenerates Figures 7 / 8a / 8b: performance of GDP and Profile Max
//! relative to the single unified memory, at the latency given by
//! `--latency {1,5,10}` (default 5 = Figure 8a).

use mcpart_bench::experiments::fig7_8;
use mcpart_bench::report::{f3, render_table, Json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (workloads, latency) = mcpart_bench::parse_args(&args);
    let latency = latency.unwrap_or(5);
    let fig = fig7_8(&workloads, latency);
    if mcpart_bench::wants_json(&args) {
        let rows: Vec<Json> = fig
            .rows
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("benchmark".into(), Json::Str(r.benchmark.clone())),
                    ("gdp".into(), Json::Num(r.gdp_rel)),
                    ("profile_max".into(), Json::Num(r.profile_max_rel)),
                    ("naive".into(), Json::Num(r.naive_rel)),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("figure".into(), Json::Str(format!("7/8 latency {latency}"))),
            ("rows".into(), Json::Arr(rows)),
            (
                "averages".into(),
                Json::Obj(vec![
                    ("gdp".into(), Json::Num(fig.averages.0)),
                    ("profile_max".into(), Json::Num(fig.averages.1)),
                    ("naive".into(), Json::Num(fig.averages.2)),
                ]),
            ),
        ]);
        println!("{}", doc.render());
        return;
    }
    let mut rows: Vec<Vec<String>> = fig
        .rows
        .iter()
        .map(|r| vec![r.benchmark.clone(), f3(r.gdp_rel), f3(r.profile_max_rel), f3(r.naive_rel)])
        .collect();
    rows.push(vec![
        "average".to_string(),
        f3(fig.averages.0),
        f3(fig.averages.1),
        f3(fig.averages.2),
    ]);
    let which = match latency {
        1 => "Figure 7 (1-cycle moves)",
        5 => "Figure 8a (5-cycle moves)",
        10 => "Figure 8b (10-cycle moves)",
        _ => "Figure 7/8 (custom latency)",
    };
    print!(
        "{}",
        render_table(
            &format!("{which}: performance relative to unified memory (1.0 = parity)"),
            &["benchmark", "GDP", "Profile Max", "Naive"],
            &rows,
        )
    );
}
