//! Scalar pre-optimization ablation: op-count reduction and GDP
//! relative performance with and without DCE/CSE/copy-prop/const-fold.

use mcpart_bench::experiments::ablation_opt;
use mcpart_bench::report::{f3, render_table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (workloads, _) = mcpart_bench::parse_args(&args);
    let rows = ablation_opt(&workloads);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                r.ops.0.to_string(),
                r.ops.1.to_string(),
                format!("{:.0}%", (1.0 - r.ops.1 as f64 / r.ops.0 as f64) * 100.0),
                f3(r.gdp_rel.0),
                f3(r.gdp_rel.1),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Pre-optimization: op counts and GDP perf vs unified (5-cycle)",
            &["benchmark", "raw ops", "opt ops", "shrink", "GDP raw", "GDP opt"],
            &table,
        )
    );
}
