//! Regenerates Figure 9: exhaustive search over all data-object
//! mappings for rawcaudio (a) and rawdaudio (b). Prints every point as
//! `cycles imbalance` plus the GDP / Profile Max choices, and a summary.

use mcpart_bench::experiments::fig9;

fn main() {
    for name in ["rawcaudio", "rawdaudio"] {
        let w = mcpart_workloads::by_name(name).expect("benchmark exists");
        match fig9(&w, 14) {
            Ok(result) => {
                println!("# Figure 9 — {name}: {} mappings", result.points.len());
                println!("# columns: normalized_perf imbalance dynamic_moves");
                let worst = result.points.iter().map(|p| p.cycles).max().unwrap_or(1) as f64;
                for p in &result.points {
                    println!(
                        "{:.4} {:.3} {}",
                        worst / p.cycles.max(1) as f64,
                        p.imbalance,
                        p.dynamic_moves
                    );
                }
                let best = result.points.iter().map(|p| p.cycles).min().unwrap_or(1) as f64;
                println!(
                    "# GDP choice: perf {:.4}, imbalance {:.3}",
                    worst / result.gdp_point.cycles.max(1) as f64,
                    result.gdp_point.imbalance
                );
                println!(
                    "# Profile Max choice: perf {:.4}, imbalance {:.3}",
                    worst / result.profile_max_point.cycles.max(1) as f64,
                    result.profile_max_point.imbalance
                );
                println!("# best/worst spread: {:.1}%", (worst / best - 1.0) * 100.0);
            }
            Err(e) => println!("# Figure 9 — {name}: skipped ({e})"),
        }
    }
}
