//! Cluster-count scaling ablation (beyond the paper's 2-cluster
//! machine): GDP relative to unified on 2- and 4-cluster machines.

use mcpart_bench::experiments::ablation_clusters;
use mcpart_bench::report::{f3, render_table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (workloads, _) = mcpart_bench::parse_args(&args);
    let counts = [2usize, 4];
    let rows = ablation_clusters(&workloads, &counts);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.benchmark.clone()];
            cells.extend(r.gdp_rel.iter().map(|&x| f3(x)));
            cells
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Cluster scaling: GDP perf relative to unified (5-cycle moves)",
            &["benchmark", "2 clusters", "4 clusters"],
            &table,
        )
    );
}
