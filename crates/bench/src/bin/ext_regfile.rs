//! Register-file pressure sweep: spill-penalty cycles of GDP's
//! distributed placement vs a centralized single-file placement as the
//! per-cluster register file shrinks.

use mcpart_bench::experiments::ext_regfile;
use mcpart_bench::report::render_table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (workloads, _) = mcpart_bench::parse_args(&args);
    let sizes = [12u32, 16, 24, 32];
    let rows = ext_regfile(&workloads, &sizes);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.benchmark.clone()];
            for i in 0..sizes.len() {
                cells.push(format!("{}/{}", r.spill_cycles[i], r.packed_spills[i]));
            }
            cells
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Register pressure: spill cycles, GDP-distributed / centralized (per RF size)",
            &["benchmark", "rf=12", "rf=16", "rf=24", "rf=32"],
            &table,
        )
    );
}
