//! Heterogeneous-machine extension: GDP on an asymmetric 2-cluster
//! machine (3:1 memory capacity, wider FU mix on the big cluster).

use mcpart_bench::experiments::ext_hetero;
use mcpart_bench::report::{f3, pct, render_table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (workloads, _) = mcpart_bench::parse_args(&args);
    let rows = ext_hetero(&workloads);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.benchmark.clone(), pct(r.big_cluster_share), f3(r.vs_homogeneous)])
        .collect();
    print!(
        "{}",
        render_table(
            "Heterogeneous machine: data share on the big cluster; speed vs homogeneous GDP",
            &["benchmark", "big-cluster data", "vs homogeneous"],
            &table,
        )
    );
}
