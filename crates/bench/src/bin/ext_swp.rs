//! Software-pipelining extension: GDP vs unified with loop kernels
//! modulo-scheduled (initiation-interval accounting).

use mcpart_bench::experiments::ext_swp;
use mcpart_bench::report::{f3, render_table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (workloads, _) = mcpart_bench::parse_args(&args);
    let rows = ext_swp(&workloads);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                f3(r.flat_rel),
                f3(r.piped_rel),
                format!("{:.2}x", r.gdp_speedup),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Software pipelining: GDP vs unified, flat and pipelined (5-cycle)",
            &["benchmark", "GDP rel (flat)", "GDP rel (piped)", "SWP speedup"],
            &table,
        )
    );
}
