//! Ablation of §4.3: sweeping the data-size balance tolerance of the
//! graph partitioner trades balance for performance.

use mcpart_bench::experiments::ablation_balance;
use mcpart_bench::report::render_table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (workloads, _) = mcpart_bench::parse_args(&args);
    let tolerances = [0.02, 0.10, 0.30, 0.50, 1.00];
    for w in &workloads {
        let points = ablation_balance(w, &tolerances);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.2}", p.imbalance),
                    p.cycles.to_string(),
                    format!("{:.3}", p.byte_skew),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &format!("Balance sweep — {}", w.name),
                &["tolerance", "GDP cycles", "byte skew (max fraction)"],
                &rows,
            )
        );
    }
}
