//! Regenerates §4.5: compile-time comparison. Profile Max runs the
//! detailed computation partitioner twice; GDP and Naive once.

use mcpart_bench::experiments::compile_time;
use mcpart_bench::report::render_table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (workloads, _) = mcpart_bench::parse_args(&args);
    let rows = compile_time(&workloads);
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                format!("{:.1}ms", r.gdp.as_secs_f64() * 1e3),
                format!("{:.1}ms", r.profile_max.as_secs_f64() * 1e3),
                format!("{:.1}ms", r.naive.as_secs_f64() * 1e3),
                format!("{:.2}x", r.profile_max.as_secs_f64() / r.gdp.as_secs_f64().max(1e-9)),
            ]
        })
        .collect();
    let tg: f64 = rows.iter().map(|r| r.gdp.as_secs_f64()).sum();
    let tp: f64 = rows.iter().map(|r| r.profile_max.as_secs_f64()).sum();
    let tn: f64 = rows.iter().map(|r| r.naive.as_secs_f64()).sum();
    table.push(vec![
        "total".to_string(),
        format!("{:.1}ms", tg * 1e3),
        format!("{:.1}ms", tp * 1e3),
        format!("{:.1}ms", tn * 1e3),
        format!("{:.2}x", tp / tg.max(1e-9)),
    ]);
    print!(
        "{}",
        render_table(
            "Section 4.5: partitioning compile time per method",
            &["benchmark", "GDP", "Profile Max", "Naive", "PM/GDP"],
            &table,
        )
    );
}
