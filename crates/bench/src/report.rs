//! ASCII table rendering for experiment output.

/// Renders a table with a title, column headers and string rows.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let sep: String = widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+");
    out.push_str(&sep);
    out.push('\n');
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!(" {:<width$} ", h, width = widths[i]))
        .collect();
    out.push_str(&header_line.join("|"));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
            .collect();
        out.push_str(&line.join("|"));
        out.push('\n');
    }
    out.push_str(&sep);
    out.push('\n');
    out
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "Demo",
            &["bench", "value"],
            &[vec!["rawcaudio".into(), "1.0".into()], vec!["fft".into(), "0.95".into()]],
        );
        assert!(t.contains("Demo"));
        assert!(t.contains("rawcaudio"));
        let lines: Vec<&str> = t.lines().collect();
        // header/sep/rows aligned to the same width.
        assert_eq!(lines[1].len(), lines[2].len());
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.956), "95.6%");
        assert_eq!(f3(1.23456), "1.235");
    }
}

/// Minimal JSON value builder for experiment outputs (keeps the harness
/// dependency-free; experiment records are flat and numeric).
#[derive(Clone, Debug)]
pub enum Json {
    /// A boolean (serialized as the literal `true`/`false`, never a
    /// quoted string).
    Bool(bool),
    /// A float (serialized with full precision).
    Num(f64),
    /// An integer.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Serializes the value.
    pub fn render(&self) -> String {
        match self {
            Json::Bool(b) => b.to_string(),
            Json::Num(x) => {
                if x.is_finite() {
                    format!("{x}")
                } else {
                    "null".to_string()
                }
            }
            Json::Int(x) => x.to_string(),
            Json::Str(s) => format!("\"{}\"", escape(s)),
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::render).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", escape(k), v.render()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod json_tests {
    use super::Json;

    #[test]
    fn json_roundtrip_shapes() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("raw\"caudio".into())),
            ("rel".into(), Json::Num(0.956)),
            ("cycles".into(), Json::Int(12345)),
            ("values".into(), Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
        ]);
        let text = v.render();
        assert_eq!(
            text,
            "{\"name\":\"raw\\\"caudio\",\"rel\":0.956,\"cycles\":12345,\"values\":[1,2.5]}"
        );
    }

    #[test]
    fn json_non_finite_is_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn json_bool_is_a_bare_literal() {
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Bool(false).render(), "false");
        let v = Json::Obj(vec![("quick".into(), Json::Bool(false))]);
        // A strict parser must see a JSON boolean, not the string
        // "false" (the bug this variant fixes).
        let parsed = mcpart_obs::json::parse(&v.render()).unwrap();
        assert_eq!(parsed.get("quick").and_then(|b| b.as_bool()), Some(false));
    }
}
