//! # mcpart-bench — the experiment harness
//!
//! One regenerator per table and figure of the paper (see DESIGN.md for
//! the experiment index):
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `cargo run -p mcpart-bench --bin table1` | Table 1 (method matrix) |
//! | `cargo run -p mcpart-bench --bin fig2` | Figure 2 (naïve placement cost) |
//! | `cargo run -p mcpart-bench --bin fig7_8 -- --latency {1,5,10}` | Figures 7, 8a, 8b |
//! | `cargo run -p mcpart-bench --bin fig9` | Figure 9 (exhaustive search) |
//! | `cargo run -p mcpart-bench --bin fig10` | Figure 10 (move traffic) |
//! | `cargo run -p mcpart-bench --bin compile_time` | §4.5 (compile time) |
//! | `cargo run -p mcpart-bench --bin ablation_merge` | §3.3.1 merging ablation |
//! | `cargo run -p mcpart-bench --bin ablation_balance` | §4.3 balance sweep |
//! | `cargo run -p mcpart-bench --bin ablation_clusters` | cluster scaling |
//!
//! Use `--release` for the full benchmark set; debug builds are fine
//! for spot checks on a few benchmarks (`-- --benchmarks a,b,c`).

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod diff;
pub mod experiments;
pub mod report;

use mcpart_workloads::Workload;

/// Returns `true` if the argument list requests JSON output
/// (`--json`).
pub fn wants_json(args: &[String]) -> bool {
    args.iter().any(|a| a == "--json")
}

/// Parses a `--benchmarks a,b,c` / `--latency N` style argument list
/// shared by the experiment binaries. Returns the workload selection
/// and the value of `--latency` (if present).
pub fn parse_args(args: &[String]) -> (Vec<Workload>, Option<u32>) {
    let mut selected: Option<Vec<String>> = None;
    let mut latency: Option<u32> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--benchmarks" => {
                if let Some(list) = args.get(i + 1) {
                    selected = Some(list.split(',').map(str::to_string).collect());
                    i += 1;
                }
            }
            "--latency" => {
                if let Some(v) = args.get(i + 1) {
                    latency = v.parse().ok();
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    let workloads = match selected {
        Some(names) => names.iter().filter_map(|n| mcpart_workloads::by_name(n)).collect(),
        None => mcpart_workloads::all(),
    };
    (workloads, latency)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--benchmarks", "rawcaudio,fft", "--latency", "10"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (ws, lat) = parse_args(&args);
        assert_eq!(ws.len(), 2);
        assert_eq!(lat, Some(10));
    }

    #[test]
    fn json_flag_detected() {
        assert!(wants_json(&["--json".to_string()]));
        assert!(!wants_json(&["--latency".to_string()]));
    }

    #[test]
    fn no_args_selects_all() {
        let (ws, lat) = parse_args(&[]);
        assert!(ws.len() >= 15);
        assert_eq!(lat, None);
    }
}
