//! `mcpart bench-diff` — the PR-over-PR bench regression gate.
//!
//! Compares two `BENCH_partition.json` files and classifies every
//! shared metric as pass, regression, or improvement. Both files are
//! strict-parsed (the same serde-free parser that validates traces)
//! and structurally validated — a malformed artifact is a hard
//! [`DiffError::Malformed`], never a silent comparison of garbage.
//!
//! Metrics split into two classes with independent thresholds:
//!
//! * **work** — deterministic, work-denominated counters (cycles,
//!   estimator calls, retries, GDP cut). Tight default threshold,
//!   because two runs of the same binary produce identical values.
//! * **time** — wall-clock seconds and their derived ratios. Loose
//!   default threshold, because hosts are noisy.
//!
//! A self-diff always exits clean: equal values pass any non-negative
//! threshold.

use crate::report::pct;
use mcpart_obs::json::{self, JsonValue};
use std::fmt;

/// Version stamped into `BENCH_partition.json` as `schema_version`.
/// Bump when the file's structure changes incompatibly.
pub const BENCH_SCHEMA_VERSION: i64 = 1;

/// Thresholds for [`diff_bench`], as fractions (0.05 = 5%).
#[derive(Clone, Copy, Debug)]
pub struct DiffConfig {
    /// Allowed relative growth of work-denominated counters.
    pub work_threshold: f64,
    /// Allowed relative growth (or shrinkage, for higher-is-better
    /// rates) of wall-clock metrics.
    pub time_threshold: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig { work_threshold: 0.05, time_threshold: 0.50 }
    }
}

/// Why a comparison could not run at all (exit code 2 territory —
/// distinct from a regression, which is exit code 1).
#[derive(Debug)]
pub enum DiffError {
    /// One of the inputs failed strict parsing or structural checks.
    Malformed(String),
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::Malformed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for DiffError {}

/// One metric comparison that crossed a threshold.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffFinding {
    /// `workload/metric` or `suite/metric`.
    pub metric: String,
    /// Value in the old file.
    pub old: f64,
    /// Value in the new file.
    pub new: f64,
    /// Relative change, signed ((new-old)/old).
    pub change: f64,
}

impl DiffFinding {
    fn line(&self) -> String {
        format!(
            "{}: {} -> {} ({}{})",
            self.metric,
            trim_num(self.old),
            trim_num(self.new),
            if self.change >= 0.0 { "+" } else { "-" },
            pct(self.change.abs())
        )
    }
}

/// The outcome of one [`diff_bench`] run.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Metrics that crossed their regression threshold.
    pub regressions: Vec<DiffFinding>,
    /// Metrics that moved the other way by the same margin.
    pub improvements: Vec<DiffFinding>,
    /// Total metric pairs compared.
    pub compared: usize,
    /// Structural notes (workloads present on one side only, metrics
    /// missing from the new file).
    pub notes: Vec<String>,
}

impl DiffReport {
    /// True when the gate should fail (nonzero exit).
    pub fn regressed(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// The human-readable report the CLI prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        for f in &self.regressions {
            out.push_str(&format!("regression: {}\n", f.line()));
        }
        for f in &self.improvements {
            out.push_str(&format!("improvement: {}\n", f.line()));
        }
        out.push_str(&format!(
            "bench-diff: {} metrics compared, {} regression(s), {} improvement(s)\n",
            self.compared,
            self.regressions.len(),
            self.improvements.len()
        ));
        out
    }
}

fn trim_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// Direction of "better" for a metric.
#[derive(Clone, Copy, PartialEq)]
enum Better {
    Lower,
    Higher,
}

/// The gated per-workload metrics: `(key, class-is-work, direction)`.
/// Counters deliberately *not* gated: `regions`, `moves_accepted`, and
/// the `pruned_*` split — they describe the shape of the search, not
/// its cost, and legitimately move when the algorithm changes.
const WORKLOAD_WORK: &[&str] = &[
    "cycles",
    "stall_cycles",
    "transfer_cycles",
    "estimator_calls",
    "full_evals",
    "retries",
    "quarantined",
    "gdp_cut",
];
const WORKLOAD_TIME: &[&str] = &["partition_secs", "pipeline_secs", "pipeline_secs_no_incremental"];
const SUITE_TIME_LOWER: &[&str] =
    &["suite_secs_sequential", "suite_secs_parallel", "serve_cold_secs", "serve_warm_secs"];
const SUITE_TIME_HIGHER: &[&str] = &[
    "parallel_speedup",
    "incremental_speedup",
    "serve_cache_hit_rate",
    "serve_warm_jobs_per_sec",
    "repartition_speedup",
];

/// Strict-parses and structurally validates one bench artifact:
/// top-level object, matching `schema_version`, a `workloads` array of
/// objects each naming its `benchmark`. Returns the parsed document.
pub fn validate_bench(text: &str, what: &str) -> Result<JsonValue, DiffError> {
    let doc = json::parse(text).map_err(|e| DiffError::Malformed(format!("{what}: {e}")))?;
    let JsonValue::Obj(_) = &doc else {
        return Err(DiffError::Malformed(format!("{what}: top level is not an object")));
    };
    let version = doc
        .get("schema_version")
        .and_then(JsonValue::as_num)
        .ok_or_else(|| DiffError::Malformed(format!("{what}: missing `schema_version`")))?;
    if version as i64 != BENCH_SCHEMA_VERSION || version.fract() != 0.0 {
        return Err(DiffError::Malformed(format!(
            "{what}: schema_version {version} (this tool understands {BENCH_SCHEMA_VERSION})"
        )));
    }
    let workloads = doc
        .get("workloads")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| DiffError::Malformed(format!("{what}: missing `workloads` array")))?;
    for (i, w) in workloads.iter().enumerate() {
        let JsonValue::Obj(_) = w else {
            return Err(DiffError::Malformed(format!("{what}: workload {i} is not an object")));
        };
        w.get("benchmark").and_then(JsonValue::as_str).ok_or_else(|| {
            DiffError::Malformed(format!("{what}: workload {i} is missing `benchmark`"))
        })?;
        for key in WORKLOAD_WORK.iter().chain(WORKLOAD_TIME) {
            if let Some(v) = w.get(key) {
                v.as_num().ok_or_else(|| {
                    DiffError::Malformed(format!("{what}: workload {i} `{key}` is not a number"))
                })?;
            }
        }
    }
    Ok(doc)
}

fn compare(
    report: &mut DiffReport,
    cfg: &DiffConfig,
    metric: String,
    old: f64,
    new: f64,
    is_work: bool,
    better: Better,
) {
    report.compared += 1;
    let threshold = if is_work { cfg.work_threshold } else { cfg.time_threshold };
    let change = if old == 0.0 {
        if new == 0.0 {
            0.0
        } else {
            // From zero, any growth is infinite-relative; call it 100%.
            1.0
        }
    } else {
        (new - old) / old
    };
    let worse = match better {
        Better::Lower => change > threshold,
        Better::Higher => -change > threshold,
    };
    let better_by_margin = match better {
        Better::Lower => -change > threshold,
        Better::Higher => change > threshold,
    };
    let finding = DiffFinding { metric, old, new, change };
    if worse {
        report.regressions.push(finding);
    } else if better_by_margin {
        report.improvements.push(finding);
    }
}

/// Compares two validated bench artifacts. `old_text` is the baseline.
pub fn diff_bench(
    old_text: &str,
    new_text: &str,
    cfg: &DiffConfig,
) -> Result<DiffReport, DiffError> {
    let old = validate_bench(old_text, "old bench file")?;
    let new = validate_bench(new_text, "new bench file")?;
    let mut report = DiffReport::default();

    let rows = |doc: &JsonValue| -> Vec<JsonValue> {
        doc.get("workloads").and_then(JsonValue::as_arr).unwrap_or(&[]).to_vec()
    };
    let name_of = |w: &JsonValue| -> String {
        w.get("benchmark").and_then(JsonValue::as_str).unwrap_or("?").to_string()
    };
    let old_rows = rows(&old);
    let new_rows = rows(&new);

    for old_row in &old_rows {
        let name = name_of(old_row);
        let Some(new_row) = new_rows.iter().find(|w| name_of(w) == name) else {
            report.regressions.push(DiffFinding {
                metric: format!("{name}: workload missing from new file"),
                old: 1.0,
                new: 0.0,
                change: -1.0,
            });
            continue;
        };
        for (keys, is_work) in [(WORKLOAD_WORK, true), (WORKLOAD_TIME, false)] {
            for key in keys {
                match (
                    old_row.get(key).and_then(JsonValue::as_num),
                    new_row.get(key).and_then(JsonValue::as_num),
                ) {
                    (Some(a), Some(b)) => compare(
                        &mut report,
                        cfg,
                        format!("{name}/{key}"),
                        a,
                        b,
                        is_work,
                        Better::Lower,
                    ),
                    (Some(_), None) => {
                        report.notes.push(format!("{name}/{key}: missing from new file"))
                    }
                    (None, _) => {}
                }
            }
        }
    }
    for new_row in &new_rows {
        let name = name_of(new_row);
        if !old_rows.iter().any(|w| name_of(w) == name) {
            report.notes.push(format!("{name}: new workload (no baseline)"));
        }
    }

    for (keys, better) in [(SUITE_TIME_LOWER, Better::Lower), (SUITE_TIME_HIGHER, Better::Higher)] {
        for key in keys {
            match (
                old.get(key).and_then(JsonValue::as_num),
                new.get(key).and_then(JsonValue::as_num),
            ) {
                (Some(a), Some(b)) => {
                    compare(&mut report, cfg, format!("suite/{key}"), a, b, false, better)
                }
                (Some(_), None) => report.notes.push(format!("suite/{key}: missing from new file")),
                (None, _) => {}
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_doc(cycles: i64, secs: f64) -> String {
        format!(
            r#"{{"schema_version":1,"benchmark":"partition-pipeline",
  "workloads":[{{"benchmark":"fir","cycles":{cycles},"estimator_calls":500,
                 "partition_secs":{secs}}}],
  "suite_secs_parallel":{secs},"parallel_speedup":3.0}}"#
        )
    }

    #[test]
    fn self_diff_is_clean() {
        let doc = bench_doc(1000, 0.5);
        let report = diff_bench(&doc, &doc, &DiffConfig::default()).expect("valid");
        assert!(!report.regressed(), "{}", report.render());
        assert!(report.improvements.is_empty());
        assert!(report.compared >= 4, "compared {} metrics", report.compared);
    }

    #[test]
    fn work_regression_crosses_the_tight_threshold() {
        let old = bench_doc(1000, 0.5);
        let new = bench_doc(1100, 0.5); // +10% cycles
        let report = diff_bench(&old, &new, &DiffConfig::default()).expect("valid");
        assert!(report.regressed());
        assert_eq!(report.regressions.len(), 1, "{}", report.render());
        assert!(report.regressions[0].metric.contains("fir/cycles"));
        // Within threshold passes.
        let small = bench_doc(1030, 0.5); // +3%
        let report = diff_bench(&old, &small, &DiffConfig::default()).expect("valid");
        assert!(!report.regressed(), "{}", report.render());
        // The reverse direction is an improvement, not a regression.
        let report = diff_bench(&new, &old, &DiffConfig::default()).expect("valid");
        assert!(!report.regressed());
        assert_eq!(report.improvements.len(), 1);
    }

    #[test]
    fn time_metrics_use_the_loose_threshold_and_direction() {
        let old = bench_doc(1000, 0.5);
        let new = bench_doc(1000, 0.6); // +20% wall clock: within 50%
        let report = diff_bench(&old, &new, &DiffConfig::default()).expect("valid");
        assert!(!report.regressed(), "{}", report.render());
        let slow = bench_doc(1000, 1.0); // +100%
        let report = diff_bench(&old, &slow, &DiffConfig::default()).expect("valid");
        assert!(report.regressed());
        // Higher-is-better rates regress downward.
        let old = r#"{"schema_version":1,"workloads":[],"parallel_speedup":4.0}"#;
        let new = r#"{"schema_version":1,"workloads":[],"parallel_speedup":1.5}"#;
        let report = diff_bench(old, new, &DiffConfig::default()).expect("valid");
        assert!(report.regressed(), "{}", report.render());
        let report = diff_bench(new, old, &DiffConfig::default()).expect("valid");
        assert!(!report.regressed());
    }

    #[test]
    fn thresholds_are_configurable() {
        let old = bench_doc(1000, 0.5);
        let new = bench_doc(1100, 0.5);
        let loose = DiffConfig { work_threshold: 0.25, time_threshold: 0.5 };
        assert!(!diff_bench(&old, &new, &loose).expect("valid").regressed());
        let exact = DiffConfig { work_threshold: 0.0, time_threshold: 0.0 };
        let tiny = bench_doc(1001, 0.5);
        assert!(diff_bench(&old, &tiny, &exact).expect("valid").regressed());
        // Even at zero threshold, a self-diff stays clean.
        assert!(!diff_bench(&old, &old, &exact).expect("valid").regressed());
    }

    #[test]
    fn missing_workload_is_a_regression_new_one_a_note() {
        let old = r#"{"schema_version":1,"workloads":[
            {"benchmark":"fir","cycles":10},{"benchmark":"iir","cycles":10}]}"#;
        let new = r#"{"schema_version":1,"workloads":[
            {"benchmark":"fir","cycles":10},{"benchmark":"fft","cycles":10}]}"#;
        let report = diff_bench(old, new, &DiffConfig::default()).expect("valid");
        assert!(report.regressed());
        assert!(report.regressions[0].metric.contains("iir"), "{}", report.render());
        assert!(report.notes.iter().any(|n| n.contains("fft")), "{}", report.render());
    }

    #[test]
    fn malformed_artifacts_fail_loudly() {
        let good = bench_doc(1, 0.1);
        for bad in [
            "",
            "not json",
            "[1,2,3]",
            r#"{"workloads":[]}"#,
            r#"{"schema_version":99,"workloads":[]}"#,
            r#"{"schema_version":1}"#,
            r#"{"schema_version":1,"workloads":[{"cycles":1}]}"#,
            r#"{"schema_version":1,"workloads":[{"benchmark":"fir","cycles":"many"}]}"#,
        ] {
            assert!(
                diff_bench(&good, bad, &DiffConfig::default()).is_err(),
                "accepted malformed input {bad:?}"
            );
            assert!(diff_bench(bad, &good, &DiffConfig::default()).is_err());
        }
    }

    #[test]
    fn zero_baseline_growth_is_flagged() {
        let old = r#"{"schema_version":1,"workloads":[{"benchmark":"fir","quarantined":0}]}"#;
        let new = r#"{"schema_version":1,"workloads":[{"benchmark":"fir","quarantined":2}]}"#;
        let report = diff_bench(old, new, &DiffConfig::default()).expect("valid");
        assert!(report.regressed(), "{}", report.render());
    }
}
