//! The experiment implementations behind every table and figure of the
//! paper. Each function returns structured results; the `bin/` targets
//! render them and EXPERIMENTS.md records them.
//!
//! Every experiment fans its independent pipeline runs out over the
//! process-default worker pool ([`mcpart_par::default_jobs`], set by
//! the harness `--jobs` flag). Each run is a pure function of its
//! (workload, method, machine) inputs and the results are reduced in
//! input order, so the numbers are identical at every worker count.

use mcpart_analysis::{AccessInfo, PointsTo};
use mcpart_core::{
    evaluate_mapping, exhaustive_search, profile_max_partition, run_pipeline, ExhaustiveError,
    ExhaustivePoint, GdpConfig, Method, ObjectGroups, PipelineConfig, RhopConfig,
};
use mcpart_ir::ClusterId;
use mcpart_machine::Machine;
use mcpart_workloads::Workload;
use std::time::Duration;

/// Result of one (benchmark, method, latency) pipeline run, reduced to
/// the metrics the figures plot.
#[derive(Clone, Debug)]
pub struct MethodResult {
    /// Dynamic cycles.
    pub cycles: u64,
    /// Dynamic intercluster moves.
    pub dynamic_moves: u64,
    /// Partitioning wall time.
    pub partition_time: Duration,
    /// Detailed-partitioner runs.
    pub detailed_runs: usize,
}

/// Maps `f` over the workloads on the process-default worker pool,
/// preserving workload order.
fn par_workloads<R, F>(workloads: &[Workload], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Workload) -> R + Sync,
{
    mcpart_par::parallel_map(mcpart_par::default_jobs(), workloads, |_, w| f(w))
}

fn run_method(w: &Workload, machine: &Machine, method: Method) -> MethodResult {
    let r = run_pipeline(&w.program, &w.profile, machine, &PipelineConfig::new(method))
        .expect("pipeline");
    MethodResult {
        cycles: r.cycles(),
        dynamic_moves: r.dynamic_moves(),
        partition_time: r.partition_time,
        detailed_runs: r.detailed_runs,
    }
}

/// Figure 2: percentage increase in cycles of the Naïve data placement
/// over the unified-memory model at each intercluster move latency.
#[derive(Clone, Debug)]
pub struct Fig2Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Percent cycle increase per latency (aligned with the input
    /// latency list).
    pub increase_pct: Vec<f64>,
}

/// Runs the Figure 2 experiment.
pub fn fig2(workloads: &[Workload], latencies: &[u32]) -> Vec<Fig2Row> {
    par_workloads(workloads, |w| {
        let increase_pct = latencies
            .iter()
            .map(|&lat| {
                let machine = Machine::paper_2cluster(lat);
                let naive = run_method(w, &machine, Method::Naive);
                let unified = run_method(w, &machine, Method::Unified);
                (naive.cycles as f64 / unified.cycles.max(1) as f64 - 1.0) * 100.0
            })
            .collect();
        Fig2Row { benchmark: w.name.to_string(), increase_pct }
    })
}

/// Figures 7 / 8a / 8b: performance of GDP and Profile Max relative to
/// the unified-memory model (1.0 = parity, higher is better).
#[derive(Clone, Debug)]
pub struct Fig78Row {
    /// Benchmark name.
    pub benchmark: String,
    /// GDP cycles relative to unified (`unified / gdp`).
    pub gdp_rel: f64,
    /// Profile Max relative performance.
    pub profile_max_rel: f64,
    /// Naive relative performance (the paper folds this into the last
    /// bar group as an average).
    pub naive_rel: f64,
}

/// Summary of a Figure 7/8 run.
#[derive(Clone, Debug)]
pub struct Fig78 {
    /// Intercluster move latency used.
    pub latency: u32,
    /// Per-benchmark rows.
    pub rows: Vec<Fig78Row>,
    /// Averages over benchmarks: (GDP, Profile Max, Naive).
    pub averages: (f64, f64, f64),
}

/// Runs the Figure 7/8 experiment at one latency.
pub fn fig7_8(workloads: &[Workload], latency: u32) -> Fig78 {
    let machine = Machine::paper_2cluster(latency);
    // Fan out at (workload × method) granularity: methods vary widely
    // in cost (GDP runs RHOP three times, Naïve once), so pair-level
    // stealing balances the pool better than whole-workload items.
    const METHODS: [Method; 4] = [Method::Unified, Method::Gdp, Method::ProfileMax, Method::Naive];
    let pairs: Vec<(usize, Method)> =
        (0..workloads.len()).flat_map(|i| METHODS.iter().map(move |&m| (i, m))).collect();
    let runs = mcpart_par::parallel_map(mcpart_par::default_jobs(), &pairs, |_, &(i, m)| {
        run_method(&workloads[i], &machine, m)
    });
    let rows: Vec<Fig78Row> = workloads
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let base = i * METHODS.len();
            let (unified, gdp, pm, naive) =
                (&runs[base], &runs[base + 1], &runs[base + 2], &runs[base + 3]);
            Fig78Row {
                benchmark: w.name.to_string(),
                gdp_rel: unified.cycles as f64 / gdp.cycles.max(1) as f64,
                profile_max_rel: unified.cycles as f64 / pm.cycles.max(1) as f64,
                naive_rel: unified.cycles as f64 / naive.cycles.max(1) as f64,
            }
        })
        .collect();
    let n = rows.len().max(1) as f64;
    let averages = (
        rows.iter().map(|r| r.gdp_rel).sum::<f64>() / n,
        rows.iter().map(|r| r.profile_max_rel).sum::<f64>() / n,
        rows.iter().map(|r| r.naive_rel).sum::<f64>() / n,
    );
    Fig78 { latency, rows, averages }
}

/// Figure 9: the exhaustive scatter plus the mappings chosen by GDP and
/// Profile Max.
#[derive(Clone, Debug)]
pub struct Fig9 {
    /// Benchmark name.
    pub benchmark: String,
    /// Every enumerated mapping.
    pub points: Vec<ExhaustivePoint>,
    /// The point of the GDP-chosen mapping.
    pub gdp_point: ExhaustivePoint,
    /// The point of the Profile-Max-chosen mapping.
    pub profile_max_point: ExhaustivePoint,
}

/// Runs the Figure 9 experiment for one benchmark.
///
/// # Errors
///
/// Returns [`ExhaustiveError::TooManyGroups`] when the benchmark has
/// too many object groups to enumerate, and propagates partitioner
/// failures from the GDP/Profile-Max reference points.
pub fn fig9(w: &Workload, limit: usize) -> Result<Fig9, ExhaustiveError> {
    let machine = Machine::paper_2cluster(5);
    let rhop = RhopConfig::default();
    let points = exhaustive_search(&w.program, &w.profile, &machine, &rhop, limit)?;

    let program = w.profile.apply_heap_sizes(&w.program);
    let pts = PointsTo::compute(&program);
    let access = AccessInfo::compute(&program, &pts, &w.profile);
    let groups = ObjectGroups::compute(&program, &access);
    // GDP mapping.
    let dp = mcpart_core::gdp_partition(
        &program,
        &w.profile,
        &access,
        &groups,
        &machine,
        &GdpConfig::default(),
    )
    .expect("GDP on enumerable benchmark");
    // The enumeration fixes the first live group on cluster 0; fold
    // GDP's mapping into the same half-space so its point lands inside
    // the enumerated bracket (RHOP itself is not swap-invariant because
    // calls pin to cluster 0, so the labeling matters).
    let mut gdp_mapping = dp.group_cluster.clone();
    if let Some(&first) = groups.live_groups().first() {
        if gdp_mapping[first] == ClusterId::new(1) {
            for c in &mut gdp_mapping {
                *c = ClusterId::new(1 - c.index());
            }
        }
    }
    let gdp_point = evaluate_mapping(&program, &w.profile, &machine, &groups, &gdp_mapping, &rhop)?;
    // Profile Max mapping.
    let (pm_placement, _) =
        profile_max_partition(&program, &access, &w.profile, &machine, &groups, &rhop, 0.10)?;
    let pm_mapping: Vec<ClusterId> = groups
        .groups
        .iter()
        .map(|members| pm_placement.object_home[members[0]].unwrap_or(ClusterId::new(0)))
        .collect();
    let profile_max_point =
        evaluate_mapping(&program, &w.profile, &machine, &groups, &pm_mapping, &rhop)?;
    Ok(Fig9 { benchmark: w.name.to_string(), points, gdp_point, profile_max_point })
}

/// Figure 10: percentage increase in dynamic intercluster moves of GDP
/// and Profile Max over the unified-memory model at 5-cycle latency.
#[derive(Clone, Debug)]
pub struct Fig10Row {
    /// Benchmark name.
    pub benchmark: String,
    /// GDP move increase in percent (can be negative: fewer moves than
    /// unified).
    pub gdp_pct: f64,
    /// Profile Max move increase in percent.
    pub profile_max_pct: f64,
}

/// Runs the Figure 10 experiment.
pub fn fig10(workloads: &[Workload]) -> Vec<Fig10Row> {
    let machine = Machine::paper_2cluster(5);
    par_workloads(workloads, |w| {
        let unified = run_method(w, &machine, Method::Unified);
        let gdp = run_method(w, &machine, Method::Gdp);
        let pm = run_method(w, &machine, Method::ProfileMax);
        let base = unified.dynamic_moves.max(1) as f64;
        Fig10Row {
            benchmark: w.name.to_string(),
            gdp_pct: (gdp.dynamic_moves as f64 / base - 1.0) * 100.0,
            profile_max_pct: (pm.dynamic_moves as f64 / base - 1.0) * 100.0,
        }
    })
}

/// §4.5: compile-time comparison. Returns per-benchmark partitioning
/// wall times for GDP, Profile Max and Naïve.
#[derive(Clone, Debug)]
pub struct CompileTimeRow {
    /// Benchmark name.
    pub benchmark: String,
    /// GDP partitioning time.
    pub gdp: Duration,
    /// Profile Max partitioning time (≈ two detailed runs).
    pub profile_max: Duration,
    /// Naïve partitioning time.
    pub naive: Duration,
}

/// Runs the compile-time experiment.
pub fn compile_time(workloads: &[Workload]) -> Vec<CompileTimeRow> {
    let machine = Machine::paper_2cluster(5);
    // (workload × method) fan-out, as in `fig7_8`.
    const METHODS: [Method; 3] = [Method::Gdp, Method::ProfileMax, Method::Naive];
    let pairs: Vec<(usize, Method)> =
        (0..workloads.len()).flat_map(|i| METHODS.iter().map(move |&m| (i, m))).collect();
    let runs = mcpart_par::parallel_map(mcpart_par::default_jobs(), &pairs, |_, &(i, m)| {
        run_method(&workloads[i], &machine, m).partition_time
    });
    workloads
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let base = i * METHODS.len();
            CompileTimeRow {
                benchmark: w.name.to_string(),
                gdp: runs[base],
                profile_max: runs[base + 1],
                naive: runs[base + 2],
            }
        })
        .collect()
}

/// Ablation: GDP relative performance with the rejected
/// dependent-operation merging (§3.3.1) and with dynamic operation
/// weight added as a second balance constraint.
#[derive(Clone, Debug)]
pub struct MergeAblationRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Default GDP relative performance.
    pub default_rel: f64,
    /// With dependent-op merging.
    pub merged_rel: f64,
    /// With dynamic operation weight as a second balance constraint.
    pub op_balance_rel: f64,
}

/// Runs the merge ablation at 5-cycle latency.
pub fn ablation_merge(workloads: &[Workload]) -> Vec<MergeAblationRow> {
    let machine = Machine::paper_2cluster(5);
    par_workloads(workloads, |w| {
        let unified = run_method(w, &machine, Method::Unified).cycles as f64;
        let mut base_cfg = PipelineConfig::new(Method::Gdp);
        let base = run_pipeline(&w.program, &w.profile, &machine, &base_cfg)
            .expect("pipeline")
            .cycles() as f64;
        base_cfg.gdp.merge_dependent_ops = true;
        let merged = run_pipeline(&w.program, &w.profile, &machine, &base_cfg)
            .expect("pipeline")
            .cycles() as f64;
        let mut ob_cfg = PipelineConfig::new(Method::Gdp);
        ob_cfg.gdp.balance_ops = true;
        let ob = run_pipeline(&w.program, &w.profile, &machine, &ob_cfg).expect("pipeline").cycles()
            as f64;
        MergeAblationRow {
            benchmark: w.name.to_string(),
            default_rel: unified / base,
            merged_rel: unified / merged,
            op_balance_rel: unified / ob,
        }
    })
}

/// Ablation (§4.3): sweep of the METIS balance tolerance — looser
/// balance admits better-performing but more imbalanced mappings.
#[derive(Clone, Debug)]
pub struct BalanceSweepPoint {
    /// Balance tolerance ε.
    pub imbalance: f64,
    /// GDP cycles at this tolerance.
    pub cycles: u64,
    /// Fraction of data bytes on the heavier cluster.
    pub byte_skew: f64,
}

/// Runs the balance-tolerance sweep for one benchmark.
pub fn ablation_balance(w: &Workload, tolerances: &[f64]) -> Vec<BalanceSweepPoint> {
    let machine = Machine::paper_2cluster(5);
    tolerances
        .iter()
        .map(|&eps| {
            let mut cfg = PipelineConfig::new(Method::Gdp);
            cfg.gdp.imbalance = eps;
            let r = run_pipeline(&w.program, &w.profile, &machine, &cfg).expect("pipeline");
            let total: u64 = r.data_bytes.iter().sum();
            let byte_skew = if total == 0 {
                0.5
            } else {
                r.data_bytes.iter().copied().max().unwrap_or(0) as f64 / total as f64
            };
            BalanceSweepPoint { imbalance: eps, cycles: r.cycles(), byte_skew }
        })
        .collect()
}

/// Extension: register-file pressure. A 2-cluster machine doubles the
/// total register capacity over a monolithic design with the same
/// per-file size; this sweep reports the profile-weighted spill-penalty
/// cycles of GDP's placement as the per-cluster file shrinks.
#[derive(Clone, Debug)]
pub struct RegFileRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Spill cycles at each swept register-file size (2-cluster GDP
    /// placement), aligned with the input list.
    pub spill_cycles: Vec<u64>,
    /// Spill cycles with everything on one cluster of the same file
    /// size (the centralized strawman), per size.
    pub packed_spills: Vec<u64>,
}

/// Runs the register-pressure sweep for GDP placements (5-cycle moves).
pub fn ext_regfile(workloads: &[Workload], sizes: &[u32]) -> Vec<RegFileRow> {
    use mcpart_sched::{register_pressure, Placement};
    par_workloads(workloads, |w| {
        let mut spill_cycles = Vec::new();
        let mut packed_spills = Vec::new();
        for &size in sizes {
            let mut machine = Machine::paper_2cluster(5);
            for c in &mut machine.clusters {
                c.regfile_size = size;
            }
            let r =
                run_pipeline(&w.program, &w.profile, &machine, &PipelineConfig::new(Method::Gdp))
                    .expect("pipeline");
            let p = register_pressure(&r.program, &r.placement, &machine, &w.profile);
            spill_cycles.push(p.spill_cycles);
            let packed = Placement::all_on_cluster0(&r.program);
            let pp = register_pressure(&r.program, &packed, &machine, &w.profile);
            packed_spills.push(pp.spill_cycles);
        }
        RegFileRow { benchmark: w.name.to_string(), spill_cycles, packed_spills }
    })
}

/// Extension: software pipelining. Modulo-scheduling the loop kernels
/// compresses schedules for all methods; the question is whether data
/// partitioning still matters once loops are pipelined (memory-port
/// contention dominates II, so it should matter *more*).
#[derive(Clone, Debug)]
pub struct SwpRow {
    /// Benchmark name.
    pub benchmark: String,
    /// GDP relative perf without pipelining.
    pub flat_rel: f64,
    /// GDP relative perf with pipelining (both sides pipelined).
    pub piped_rel: f64,
    /// Cycle reduction from pipelining under GDP.
    pub gdp_speedup: f64,
}

/// Runs the software-pipelining extension at 5-cycle latency.
pub fn ext_swp(workloads: &[Workload]) -> Vec<SwpRow> {
    let machine = Machine::paper_2cluster(5);
    par_workloads(workloads, |w| {
        let run4 = |method: Method, swp: bool| {
            let mut cfg = PipelineConfig::new(method);
            cfg.software_pipelining = swp;
            run_pipeline(&w.program, &w.profile, &machine, &cfg).expect("pipeline").cycles()
        };
        let uni_flat = run4(Method::Unified, false) as f64;
        let gdp_flat = run4(Method::Gdp, false) as f64;
        let uni_piped = run4(Method::Unified, true) as f64;
        let gdp_piped = run4(Method::Gdp, true) as f64;
        SwpRow {
            benchmark: w.name.to_string(),
            flat_rel: uni_flat / gdp_flat,
            piped_rel: uni_piped / gdp_piped,
            gdp_speedup: gdp_flat / gdp_piped,
        }
    })
}

/// Extension: heterogeneous machines. GDP on a 2-cluster machine whose
/// cluster 0 has a 3× memory capacity (balance target 3:1) and a wider
/// FU mix; verifies the data split follows the capacity weights and
/// reports performance relative to the homogeneous machine's unified
/// model.
#[derive(Clone, Debug)]
pub struct HeteroRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Fraction of data bytes homed on the big cluster.
    pub big_cluster_share: f64,
    /// GDP cycles on the heterogeneous machine relative to GDP on the
    /// homogeneous paper machine (>1 = the asymmetric machine is
    /// faster).
    pub vs_homogeneous: f64,
}

/// Runs the heterogeneous-machine extension at 5-cycle latency.
pub fn ext_hetero(workloads: &[Workload]) -> Vec<HeteroRow> {
    use mcpart_machine::{Cluster, FuMix, Interconnect, LatencyTable, MemoryModel};
    let hetero = mcpart_machine::Machine {
        clusters: vec![
            Cluster::new("big", FuMix::new(3, 1, 2, 1)).with_memory_weight(3),
            Cluster::new("small", FuMix::new(2, 1, 1, 1)).with_memory_weight(1),
        ],
        interconnect: Interconnect::bus(5),
        memory: MemoryModel::Partitioned,
        latency: LatencyTable::itanium_like(),
    };
    let homo = Machine::paper_2cluster(5);
    par_workloads(workloads, |w| {
        let h = run_pipeline(&w.program, &w.profile, &hetero, &PipelineConfig::new(Method::Gdp))
            .expect("pipeline");
        let base = run_pipeline(&w.program, &w.profile, &homo, &PipelineConfig::new(Method::Gdp))
            .expect("pipeline");
        let total: u64 = h.data_bytes.iter().sum();
        HeteroRow {
            benchmark: w.name.to_string(),
            big_cluster_share: h.data_bytes[0] as f64 / total.max(1) as f64,
            vs_homogeneous: base.cycles() as f64 / h.cycles() as f64,
        }
    })
}

/// §2 background experiment (after Terechko et al., cited by the
/// paper): what fraction of the Naïve method's intercluster move
/// traffic serves *data* accesses (operands of relocated memory
/// operations or forwarded load results) rather than ordinary
/// computation, and how large the naive cycle overhead is.
#[derive(Clone, Debug)]
pub struct TerechkoRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Fraction of dynamic intercluster moves that are data-related.
    pub data_move_fraction: f64,
    /// Naive cycle overhead over unified (fraction).
    pub overhead: f64,
}

/// Runs the data-vs-computation move classification for the Naïve
/// method at 5-cycle latency.
pub fn ext_terechko(workloads: &[Workload]) -> Vec<TerechkoRow> {
    use mcpart_ir::{DefUse, Opcode};
    use mcpart_sched::{is_intercluster_move, vreg_homes};
    let machine = Machine::paper_2cluster(5);
    par_workloads(workloads, |w| {
        let naive =
            run_pipeline(&w.program, &w.profile, &machine, &PipelineConfig::new(Method::Naive))
                .expect("pipeline");
        let unified =
            run_pipeline(&w.program, &w.profile, &machine, &PipelineConfig::new(Method::Unified))
                .expect("pipeline");
        let program = &naive.program;
        let mut data_moves = 0u64;
        let mut all_moves = 0u64;
        for (fid, f) in program.functions.iter() {
            let homes = vreg_homes(program, fid, &naive.placement);
            let du = DefUse::compute(f);
            for (oid, op) in f.ops.iter() {
                if !is_intercluster_move(program, fid, oid, &naive.placement, &homes) {
                    continue;
                }
                let freq = w.profile.op_freq(program, fid, oid);
                all_moves += freq;
                // Data-related: forwards a load result, or feeds a
                // memory operation.
                let src = op.srcs[0];
                let from_load =
                    du.defs[src].iter().any(|&d| matches!(f.ops[d].opcode, Opcode::Load(_)));
                let dst = op.dsts[0];
                let to_mem = du.uses[dst].iter().any(|&u| f.ops[u].opcode.is_memory());
                if from_load || to_mem {
                    data_moves += freq;
                }
            }
        }
        TerechkoRow {
            benchmark: w.name.to_string(),
            data_move_fraction: data_moves as f64 / all_moves.max(1) as f64,
            overhead: naive.cycles() as f64 / unified.cycles().max(1) as f64 - 1.0,
        }
    })
}

/// Ablation: scalar pre-optimization (DCE/CSE/copy-prop/const-fold)
/// before partitioning.
#[derive(Clone, Debug)]
pub struct OptAblationRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Operation count: (raw, optimized).
    pub ops: (usize, usize),
    /// GDP relative performance vs the *matching* unified baseline:
    /// (raw, optimized).
    pub gdp_rel: (f64, f64),
}

/// Runs the pre-optimization ablation for GDP at 5-cycle latency.
pub fn ablation_opt(workloads: &[Workload]) -> Vec<OptAblationRow> {
    let machine = Machine::paper_2cluster(5);
    par_workloads(workloads, |w| {
        let mut rels = [0.0f64; 2];
        let mut ops = [0usize; 2];
        for (i, pre) in [false, true].into_iter().enumerate() {
            let mut ucfg = PipelineConfig::new(Method::Unified);
            ucfg.pre_optimize = pre;
            let unified = run_pipeline(&w.program, &w.profile, &machine, &ucfg).expect("pipeline");
            let mut cfg = PipelineConfig::new(Method::Gdp);
            cfg.pre_optimize = pre;
            let r = run_pipeline(&w.program, &w.profile, &machine, &cfg).expect("pipeline");
            rels[i] = unified.cycles() as f64 / r.cycles() as f64;
            // Count ops before move insertion by re-optimizing a copy.
            ops[i] = if pre {
                let mut p = w.profile.apply_heap_sizes(&w.program);
                mcpart_ir::optimize(&mut p);
                p.num_ops()
            } else {
                w.program.num_ops()
            };
        }
        OptAblationRow {
            benchmark: w.name.to_string(),
            ops: (ops[0], ops[1]),
            gdp_rel: (rels[0], rels[1]),
        }
    })
}

/// Ablation: move-placement strategy — per-use-block transfers vs
/// profile-guided producer-side hoisting.
#[derive(Clone, Debug)]
pub struct HoistAblationRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Cycles: (per-use-block, hoisted).
    pub cycles: (u64, u64),
    /// Dynamic moves: (per-use-block, hoisted).
    pub moves: (u64, u64),
}

/// Runs the hoisting ablation for GDP at 5-cycle latency.
pub fn ablation_hoist(workloads: &[Workload]) -> Vec<HoistAblationRow> {
    use mcpart_sched::MoveStrategy;
    let machine = Machine::paper_2cluster(5);
    par_workloads(workloads, |w| {
        let mut results = Vec::new();
        for strategy in [MoveStrategy::PerUseBlock, MoveStrategy::ProfileHoisted] {
            let mut cfg = PipelineConfig::new(Method::Gdp);
            cfg.move_strategy = strategy;
            let r = run_pipeline(&w.program, &w.profile, &machine, &cfg).expect("pipeline");
            results.push((r.cycles(), r.dynamic_moves()));
        }
        HoistAblationRow {
            benchmark: w.name.to_string(),
            cycles: (results[0].0, results[1].0),
            moves: (results[0].1, results[1].1),
        }
    })
}

/// Extension (the paper's §2 middle ground / §5 future work): GDP under
/// coherent per-cluster caches at several remote-access penalties,
/// compared to fully partitioned memory, all relative to unified.
#[derive(Clone, Debug)]
pub struct CacheExtensionRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Fully partitioned relative performance.
    pub partitioned_rel: f64,
    /// Coherent-cache relative performance per penalty (aligned with
    /// the input list).
    pub coherent_rel: Vec<f64>,
    /// Dynamic remote accesses per penalty.
    pub remote_accesses: Vec<u64>,
}

/// Runs the coherent-cache extension experiment (5-cycle moves).
pub fn ext_cache(workloads: &[Workload], penalties: &[u32]) -> Vec<CacheExtensionRow> {
    par_workloads(workloads, |w| {
        let base = Machine::paper_2cluster(5);
        let unified =
            run_pipeline(&w.program, &w.profile, &base, &PipelineConfig::new(Method::Unified))
                .expect("pipeline")
                .cycles() as f64;
        let part = run_pipeline(&w.program, &w.profile, &base, &PipelineConfig::new(Method::Gdp))
            .expect("pipeline")
            .cycles() as f64;
        let mut coherent_rel = Vec::new();
        let mut remote_accesses = Vec::new();
        for &p in penalties {
            let machine = Machine::paper_2cluster(5).with_coherent_cache(p);
            let r =
                run_pipeline(&w.program, &w.profile, &machine, &PipelineConfig::new(Method::Gdp))
                    .expect("pipeline");
            coherent_rel.push(unified / r.cycles() as f64);
            remote_accesses.push(r.report.dynamic_remote_accesses);
        }
        CacheExtensionRow {
            benchmark: w.name.to_string(),
            partitioned_rel: unified / part,
            coherent_rel,
            remote_accesses,
        }
    })
}

/// Ablation: RHOP region scope (per-block + live-in sweeps vs loop
/// nests vs whole function).
#[derive(Clone, Debug)]
pub struct RegionScopeRow {
    /// Benchmark name.
    pub benchmark: String,
    /// GDP relative performance per scope: (per-block, loop-nests,
    /// whole-function).
    pub rel: (f64, f64, f64),
}

/// Runs the region-scope ablation at 5-cycle latency.
pub fn ablation_regions(workloads: &[Workload]) -> Vec<RegionScopeRow> {
    use mcpart_core::RegionScope;
    let machine = Machine::paper_2cluster(5);
    par_workloads(workloads, |w| {
        let mut rels = [0.0f64; 3];
        for (i, scope) in
            [RegionScope::PerBlock, RegionScope::LoopNests, RegionScope::WholeFunction]
                .into_iter()
                .enumerate()
        {
            // Both sides use the same scope for a fair comparison.
            let mut ucfg = PipelineConfig::new(Method::Unified);
            ucfg.rhop.region_scope = scope;
            let unified = run_pipeline(&w.program, &w.profile, &machine, &ucfg).expect("pipeline");
            let mut cfg = PipelineConfig::new(Method::Gdp);
            cfg.rhop.region_scope = scope;
            let r = run_pipeline(&w.program, &w.profile, &machine, &cfg).expect("pipeline");
            rels[i] = unified.cycles() as f64 / r.cycles() as f64;
        }
        RegionScopeRow { benchmark: w.name.to_string(), rel: (rels[0], rels[1], rels[2]) }
    })
}

/// Ablation: cluster-count scaling (beyond the paper's 2 clusters).
#[derive(Clone, Debug)]
pub struct ClusterScaleRow {
    /// Benchmark name.
    pub benchmark: String,
    /// GDP relative performance (vs unified on the same machine) per
    /// cluster count, aligned with the input list.
    pub gdp_rel: Vec<f64>,
}

/// Runs the cluster-scaling ablation at 5-cycle latency.
pub fn ablation_clusters(workloads: &[Workload], cluster_counts: &[usize]) -> Vec<ClusterScaleRow> {
    par_workloads(workloads, |w| {
        let gdp_rel = cluster_counts
            .iter()
            .map(|&n| {
                let machine = Machine::homogeneous(n, 5);
                let unified = run_method(w, &machine, Method::Unified);
                let gdp = run_method(w, &machine, Method::Gdp);
                unified.cycles as f64 / gdp.cycles.max(1) as f64
            })
            .collect();
        ClusterScaleRow { benchmark: w.name.to_string(), gdp_rel }
    })
}
