//! # mcpart — compiler-directed data partitioning for multicluster processors
//!
//! A full reproduction of Chu & Mahlke, *Compiler-directed Data
//! Partitioning for Multicluster Processors* (CGO 2006), as a Rust
//! workspace. This facade crate re-exports the public API of every
//! subsystem:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`ir`] | `mcpart-ir` | compiler IR: programs, functions, blocks, operations, data objects, profiles |
//! | [`analysis`] | `mcpart-analysis` | points-to analysis, access relationships, call graph |
//! | [`metis`] | `mcpart-metis` | multilevel k-way graph partitioner (METIS-style) |
//! | [`machine`] | `mcpart-machine` | clustered-VLIW machine model |
//! | [`sched`] | `mcpart-sched` | list scheduler, move insertion, RHOP estimator, cycle accounting |
//! | [`sim`] | `mcpart-sim` | functional interpreter, profiling, semantic validation |
//! | [`obs`] | `mcpart-obs` | observability: spans, counters, Chrome trace export, summary tables |
//! | [`rng`] | `mcpart-rng` | small deterministic PRNG used by the partitioners and tests |
//! | [`core`] | `mcpart-core` | GDP, RHOP, baselines, pipeline, exhaustive search |
//! | [`workloads`] | `mcpart-workloads` | synthetic Mediabench / DSP benchmark generators |
//!
//! ## Quickstart
//!
//! ```
//! use mcpart::core::{run_pipeline, Method, PipelineConfig};
//! use mcpart::machine::Machine;
//!
//! let workload = mcpart::workloads::by_name("rawcaudio").expect("known benchmark");
//! let machine = Machine::paper_2cluster(5);
//! let gdp = run_pipeline(
//!     &workload.program,
//!     &workload.profile,
//!     &machine,
//!     &PipelineConfig::new(Method::Gdp),
//! )
//! .expect("pipeline");
//! let unified = run_pipeline(
//!     &workload.program,
//!     &workload.profile,
//!     &machine,
//!     &PipelineConfig::new(Method::Unified),
//! )
//! .expect("pipeline");
//! let relative = unified.cycles() as f64 / gdp.cycles() as f64;
//! assert!(relative > 0.5, "GDP should be in the unified ballpark");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mcpart_analysis as analysis;
pub use mcpart_core as core;
pub use mcpart_ir as ir;
pub use mcpart_machine as machine;
pub use mcpart_metis as metis;
pub use mcpart_obs as obs;
pub use mcpart_par as par;
pub use mcpart_rng as rng;
pub use mcpart_sched as sched;
pub use mcpart_sim as sim;
pub use mcpart_workloads as workloads;
