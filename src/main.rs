//! `mcpart` — command-line driver for the data/computation partitioner.
//!
//! ```text
//! mcpart list                                   # available benchmarks
//! mcpart run rawcaudio --method gdp --latency 5 # one pipeline run
//! mcpart compare rawcaudio --latency 10         # all four methods
//! mcpart dump rawcaudio > rawcaudio.mcir        # textual IR
//! mcpart exec program.mcir --method gdp         # partition a text-IR file
//! mcpart partition rawcaudio                    # object homes chosen by GDP
//! ```
//!
//! Exit codes: `0` success, `1` pipeline or input failure (unreadable
//! file, parse error, partitioner failure), `2` usage error (unknown
//! command or malformed flags).

use mcpart::core::{
    load_checkpoint, method_slug, program_fingerprint, run_pipeline, run_unit_full,
    CheckpointError, CheckpointHeader, CheckpointWriter, Downgrade, Manifest, Method, PanicPlan,
    PipelineConfig, RepartitionStats, ServeConfig, UnitRecord,
};
use mcpart::ir::{parse_program, program_to_string, Profile, Program};
use mcpart::machine::Machine;
use mcpart::sim::{profile_run, ExecConfig};
use std::collections::BTreeSet;
use std::process::ExitCode;
use std::time::Duration;

/// Prints a line to stdout, exiting quietly when the consumer has gone
/// away (e.g. `mcpart list | head`): a broken pipe is a normal way for
/// a CLI's output to end, not a panic.
macro_rules! outln {
    ($($arg:tt)*) => {{
        use std::io::Write;
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

const USAGE: &str =
    "usage: mcpart <list|gen|run|compare|dump|exec|partition|repartition|schedule|serve|chaos|\
     stats|trace-check|bench-diff|checkpoint-diff> [args]
gen <spec> [--out <path>]  generate a synthetic scale program: <spec> is
         a preset (synth_10k, synth_100k, synth_1m) or key=value,...
         (keys ops,funcs,depth,region,objects,sharing,trips,seed);
         prints size stats, --out writes the .mcir text. Synthetic
         names/specs also work as targets for partition/run/compare.
options: --method gdp|profile-max|naive|unified  --latency <cycles>
         --clusters <n>  --memory partitioned|unified|coherent:<penalty>
         --gdp-fuel <n>  (cap GDP refinement; exhaustion triggers the
                          ProfileMax/Naive fallback ladder)
         --jobs <n>      (worker threads for partitioning; 0 = all
                          cores, the default; never changes results)
         --trace-out <path>  (write a Chrome trace_event JSON of the run)
         --metrics           (print the observability summary table)
         --retries <n>       (panic retry budget per work unit; default 2)
         --checkpoint <path> (append one JSON record per finished unit)
         --resume            (with --checkpoint: skip recorded units and
                              replay their results; crash-safe)
         --unit-timeout <ms> (wall-clock ceiling per partition attempt)
         --allow-quarantine  (exit 0 even when units were quarantined)
         --inject-panic <func[:n]> (testing: panic while partitioning
                              `func`, the first n attempts; default all)
         --halt-after <n>    (testing: die mid-write after n completed
                              units/jobs, simulating kill -9)
repartition <target> --baseline <checkpoint> [run options]
         incremental re-partition against a prior GDP run's manifest:
         functions whose content, accessed data groups, and merge
         neighbourhood are unchanged replay the baseline's placement
         byte-identically; only the dirty cone re-runs RHOP. A
         manifest-less baseline degrades to a full run (never an
         error); an incompatible one (different name/seed/clusters/
         latency/memory/fuel) is rejected with exit 2
serve <spool-dir> [--drain] [--batch n] [--queue n] [--poll-ms n]
         [--telemetry-every n] [--max-requeues n]
         long-running partition service: submit jobs as
         <spool-dir>/*.job files, read results from <spool-dir>/out/;
         repeat submissions are integrity-verified cache hits; the
         flight recorder appends metric snapshots to
         <spool-dir>/telemetry/ every n committed jobs (0 disables);
         a job requeued by crash recovery more than n times (default 3)
         is quarantined to failed/ as poison instead of requeued
chaos <scenarios> [--seed n] [--no-shrink] [--corpus dir] [--sweep file]
         [--jobs n] [--metrics] [--trace-out path] | --replay <file>
         deterministic soak: samples (program, machine, fault-plan)
         scenarios from a k-cluster sweep matrix, runs the pipeline
         under injected faults, and judges every outcome with an
         independent placement oracle (well-formedness, recounted
         bytes/cut, move accounting, ladder soundness, semantics,
         jobs-invariance at --jobs workers). Failures are shrunk to
         minimal repros written to --corpus; --replay re-runs one
         repro file exactly; --sweep replaces the built-in machine
         matrix (malformed files exit 2 with line/column)
stats <telemetry-dir|trace.json> [--pinned]  per-stage latency and
         work-distribution percentile tables (p50/p90/p99) from a serve
         telemetry directory or a Chrome trace file; --pinned prints
         only the deterministic work histograms as JSON
trace-check <path> [--require cat/name[=v],...] [--forbid cat/name,...]
         validates a trace file; --require checks a counter exists
         (and equals v, if given), --forbid fails on any nonzero
         sample (e.g. --forbid supervise/quarantined for clean runs)
bench-diff <old.json> <new.json> [--threshold pct] [--time-threshold pct]
         regression gate over two BENCH_partition.json artifacts;
         exit 1 on regression, 2 on a malformed artifact
checkpoint-diff <a> <b>  compares two checkpoint files, ignoring
         non-pinned fields (wall-clock); manifest deltas are reported
         per function, sorted; exit 1 on any difference";

/// A CLI failure, split by whose fault it is: `Usage` means the command
/// line itself was malformed (exit 2, with usage text), `Config` means
/// the configuration on disk is unusable — a corrupt or mismatched
/// checkpoint (exit 2, diagnostic only), `Runtime` means the inputs or
/// the pipeline failed (exit 1).
enum CliError {
    Usage(String),
    Config(String),
    Runtime(String),
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Runtime(msg)
    }
}

struct Options {
    latency: u32,
    clusters: usize,
    memory: MemoryChoice,
    method: Method,
    gdp_fuel: Option<u64>,
    jobs: usize,
    trace_out: Option<String>,
    metrics: bool,
    retries: u32,
    checkpoint: Option<String>,
    resume: bool,
    unit_timeout_ms: Option<u64>,
    allow_quarantine: bool,
    inject_panic: Option<PanicPlan>,
    halt_after: Option<u64>,
}

#[derive(Clone, Copy, PartialEq)]
enum MemoryChoice {
    Partitioned,
    Unified,
    Coherent(u32),
}

impl Default for Options {
    fn default() -> Self {
        Options {
            latency: 5,
            clusters: 2,
            memory: MemoryChoice::Partitioned,
            method: Method::Gdp,
            gdp_fuel: None,
            jobs: 0,
            trace_out: None,
            metrics: false,
            retries: 2,
            checkpoint: None,
            resume: false,
            unit_timeout_ms: None,
            allow_quarantine: false,
            inject_panic: None,
            halt_after: None,
        }
    }
}

fn parse_method(s: &str) -> Option<Method> {
    Some(match s.to_ascii_lowercase().as_str() {
        "gdp" => Method::Gdp,
        "profile-max" | "profilemax" | "pm" => Method::ProfileMax,
        "naive" => Method::Naive,
        "unified" => Method::Unified,
        _ => return None,
    })
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--latency" => {
                o.latency = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--latency needs a number")?;
                i += 1;
            }
            "--clusters" => {
                o.clusters = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--clusters needs a number")?;
                if o.clusters == 0 {
                    return Err("--clusters must be at least 1".into());
                }
                i += 1;
            }
            "--method" => {
                o.method = args
                    .get(i + 1)
                    .and_then(|v| parse_method(v))
                    .ok_or("--method must be gdp|profile-max|naive|unified")?;
                i += 1;
            }
            "--gdp-fuel" => {
                o.gdp_fuel = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--gdp-fuel needs a number")?,
                );
                i += 1;
            }
            "--jobs" => {
                o.jobs =
                    args.get(i + 1).and_then(|v| v.parse().ok()).ok_or("--jobs needs a number")?;
                i += 1;
            }
            "--trace-out" => {
                o.trace_out = Some(args.get(i + 1).ok_or("--trace-out needs a path")?.to_string());
                i += 1;
            }
            "--metrics" => {
                o.metrics = true;
            }
            "--retries" => {
                o.retries = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--retries needs a number")?;
                i += 1;
            }
            "--checkpoint" => {
                o.checkpoint =
                    Some(args.get(i + 1).ok_or("--checkpoint needs a path")?.to_string());
                i += 1;
            }
            "--resume" => {
                o.resume = true;
            }
            "--unit-timeout" => {
                o.unit_timeout_ms = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .filter(|&ms| ms > 0)
                        .ok_or("--unit-timeout needs a positive millisecond count")?,
                );
                i += 1;
            }
            "--allow-quarantine" => {
                o.allow_quarantine = true;
            }
            "--halt-after" => {
                o.halt_after = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or("--halt-after needs a positive count")?,
                );
                i += 1;
            }
            "--inject-panic" => {
                let v = args.get(i + 1).ok_or("--inject-panic needs a function name")?;
                o.inject_panic = Some(match v.split_once(':') {
                    Some((func, count)) => PanicPlan {
                        func: func.to_string(),
                        panics: count
                            .parse()
                            .map_err(|_| "--inject-panic <func[:n]> needs a numeric count")?,
                    },
                    None => PanicPlan::always(v),
                });
                i += 1;
            }
            "--memory" => {
                let v = args.get(i + 1).ok_or("--memory needs a value")?;
                o.memory = if v == "partitioned" {
                    MemoryChoice::Partitioned
                } else if v == "unified" {
                    MemoryChoice::Unified
                } else if let Some(p) = v.strip_prefix("coherent:") {
                    MemoryChoice::Coherent(
                        p.parse().map_err(|_| "coherent:<penalty> needs a number")?,
                    )
                } else {
                    return Err("--memory must be partitioned|unified|coherent:<penalty>".into());
                };
                i += 1;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    if o.resume && o.checkpoint.is_none() {
        return Err("--resume requires --checkpoint <path>".into());
    }
    Ok(o)
}

fn config_of(o: &Options, method: Method) -> PipelineConfig {
    let mut cfg = PipelineConfig::new(method).with_jobs(o.jobs).with_retries(o.retries);
    cfg.gdp.fuel = o.gdp_fuel;
    cfg.unit_timeout = o.unit_timeout_ms.map(Duration::from_millis);
    cfg.rhop.inject_panic = o.inject_panic.clone();
    cfg
}

/// One observability sink per invocation: recording only when the user
/// asked for a trace file or the metrics table.
fn obs_of(o: &Options) -> mcpart::obs::Obs {
    if o.trace_out.is_some() || o.metrics {
        mcpart::obs::Obs::enabled()
    } else {
        mcpart::obs::Obs::disabled()
    }
}

/// Writes the Chrome trace and/or prints the summary table, as
/// requested by `--trace-out` / `--metrics`.
fn emit_obs(o: &Options, obs: &mcpart::obs::Obs) -> Result<(), String> {
    if let Some(path) = &o.trace_out {
        std::fs::write(path, obs.chrome_trace())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if o.metrics {
        outln!("{}", obs.summary());
    }
    Ok(())
}

fn machine_of(o: &Options) -> Result<Machine, CliError> {
    let m = Machine::homogeneous(o.clusters, o.latency);
    let m = match o.memory {
        MemoryChoice::Partitioned => m,
        MemoryChoice::Unified => m.with_unified_memory(),
        MemoryChoice::Coherent(p) => m.with_coherent_cache(p),
    };
    m.validate().map_err(|e| CliError::Usage(format!("machine configuration invalid: {e}")))?;
    Ok(m)
}

fn load_target(name_or_path: &str) -> Result<(Program, Profile), String> {
    // Synthetic specs first — a preset name or `key=value,...` string
    // (`mcpart partition ops=100000`) keeps its parse diagnostic
    // instead of degrading to the generic "unknown benchmark" message.
    if name_or_path.starts_with("synth_") || name_or_path.contains('=') {
        let w = mcpart::workloads::synth_result(name_or_path)
            .map_err(|e| format!("`{name_or_path}`: {e}"))?;
        return Ok((w.program, w.profile));
    }
    if let Some(w) = mcpart::workloads::by_name(name_or_path) {
        return Ok((w.program, w.profile));
    }
    if std::path::Path::new(name_or_path).exists() {
        let text = std::fs::read_to_string(name_or_path)
            .map_err(|e| format!("cannot read {name_or_path}: {e}"))?;
        let program = parse_program(&text).map_err(|e| format!("{name_or_path}: {e}"))?;
        mcpart::ir::verify_program(&program).map_err(|e| format!("{name_or_path}: {e}"))?;
        let profile = profile_run(&program, &[], ExecConfig::default())
            .map_err(|e| format!("{name_or_path}: execution failed: {e}"))?;
        return Ok((program, profile));
    }
    Err(format!(
        "`{name_or_path}` is neither a known benchmark nor a readable file (try `mcpart list`)"
    ))
}

/// CLI-side wrapper of [`load_target`]: a malformed synthetic spec is
/// a *usage* error (exit 2, with the parser's column diagnostic);
/// everything else stays a runtime error. `serve` keeps the plain
/// [`load_target`] as its job loader — a service job never exits the
/// process.
fn load_target_cli(target: &str) -> Result<(Program, Profile), CliError> {
    if target.starts_with("synth_") || target.contains('=') {
        let w = mcpart::workloads::synth_result(target)
            .map_err(|e| CliError::Usage(format!("`{target}`: {e}")))?;
        return Ok((w.program, w.profile));
    }
    load_target(target).map_err(CliError::Runtime)
}

/// Announces any degradation-ladder activity on stderr so scripted
/// consumers of stdout still see the warning.
fn report_downgrades(downgrades: &[Downgrade]) {
    for d in downgrades {
        eprintln!("warning: downgraded {d}");
    }
}

/// Stable slug of the memory model, recorded in checkpoint headers.
fn memory_slug(m: MemoryChoice) -> String {
    match m {
        MemoryChoice::Partitioned => "partitioned".to_string(),
        MemoryChoice::Unified => "unified".to_string(),
        MemoryChoice::Coherent(p) => format!("coherent:{p}"),
    }
}

/// The checkpoint header this invocation would write: everything a
/// unit's result depends on. A `--resume` against a file whose header
/// differs is rejected before any unit is skipped.
fn header_of(o: &Options, program: &Program) -> CheckpointHeader {
    CheckpointHeader {
        program: program.name.clone(),
        program_hash: program_fingerprint(program),
        seed: PipelineConfig::new(o.method).rhop.seed,
        clusters: o.clusters,
        latency: o.latency,
        memory: memory_slug(o.memory),
        gdp_fuel: o.gdp_fuel,
    }
}

/// Splits checkpoint failures by exit code: a corrupt or mismatched
/// file is a configuration problem (exit 2, diagnostic only); an I/O
/// failure is a runtime one (exit 1).
fn ck_err(e: CheckpointError) -> CliError {
    match e {
        CheckpointError::Io(_) => CliError::Runtime(e.to_string()),
        _ => CliError::Config(e.to_string()),
    }
}

/// An open checkpoint file: previously completed units (on `--resume`)
/// plus the writer that appends each newly finished one.
struct CheckpointSession {
    writer: CheckpointWriter,
    resumed: Vec<UnitRecord>,
    /// Units appended so far, for the `--halt-after` crash hook.
    appended: u64,
    /// `--halt-after n`: write only half of the nth appended record —
    /// no terminator — and abort, leaving exactly the file a process
    /// killed mid-append leaves. Deterministic where a raced SIGKILL
    /// is not, so the kill-and-resume smoke never flakes.
    halt_after: Option<u64>,
}

impl CheckpointSession {
    /// Opens the checkpoint named by `--checkpoint`, if any. With
    /// `--resume` and an existing file, the file is validated against
    /// this run's header and its completed units are carried over
    /// (rewriting the file drops any crash artifact from the tail);
    /// otherwise a fresh file is created.
    fn open(o: &Options, program: &Program) -> Result<Option<CheckpointSession>, CliError> {
        let Some(path) = &o.checkpoint else { return Ok(None) };
        let header = header_of(o, program);
        if o.resume && std::path::Path::new(path).exists() {
            let ck = load_checkpoint(path, &header).map_err(ck_err)?;
            if ck.dropped_partial_tail {
                eprintln!("note: {path}: discarded a partial trailing record (crash artifact)");
            }
            let writer = CheckpointWriter::resume(path, &header, &ck.records, &ck.manifests)
                .map_err(ck_err)?;
            Ok(Some(CheckpointSession {
                writer,
                resumed: ck.records,
                appended: 0,
                halt_after: o.halt_after,
            }))
        } else {
            let writer = CheckpointWriter::create(path, &header).map_err(ck_err)?;
            Ok(Some(CheckpointSession {
                writer,
                resumed: Vec::new(),
                appended: 0,
                halt_after: o.halt_after,
            }))
        }
    }

    /// Appends a finished unit (and its manifest, when the run
    /// produced one), honouring the `--halt-after` crash injection
    /// point. The manifest goes second: a crash between the two lines
    /// loses only the incremental-replay hint, never the result.
    fn append(&mut self, rec: &UnitRecord, manifest: Option<&Manifest>) -> Result<(), CliError> {
        self.appended += 1;
        if self.halt_after == Some(self.appended) {
            self.writer.append_partial(rec).map_err(ck_err)?;
            std::process::abort();
        }
        self.writer.append(rec).map_err(ck_err)?;
        if let Some(m) = manifest {
            self.writer.append_manifest(m).map_err(ck_err)?;
        }
        Ok(())
    }

    fn resumed_record(&self, unit: &str) -> Option<UnitRecord> {
        self.resumed.iter().find(|r| r.unit == unit).cloned()
    }
}

/// Runs (or replays) one checkpointable unit. A unit recorded in the
/// resumed checkpoint is replayed — its pinned obs events re-enter the
/// sink, so the final trace is byte-identical to an uninterrupted run —
/// without recomputation; a live unit runs the pipeline and is flushed
/// to the checkpoint before its result is reported.
#[allow(clippy::too_many_arguments)]
fn run_or_resume(
    program: &Program,
    profile: &Profile,
    machine: &Machine,
    o: &Options,
    method: Method,
    obs: &mcpart::obs::Obs,
    session: &mut Option<CheckpointSession>,
    baseline: Option<std::sync::Arc<Manifest>>,
) -> Result<(UnitRecord, Option<RepartitionStats>), CliError> {
    let unit = format!("{}/{}", program.name, method_slug(method));
    if let Some(s) = session {
        if let Some(rec) = s.resumed_record(&unit) {
            rec.replay_events(obs);
            return Ok((rec, None));
        }
    }
    let mut config = config_of(o, method).with_obs(obs.clone());
    config.baseline = baseline;
    let run = run_unit_full(program, profile, machine, &config)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    if let Some(s) = session {
        s.append(&run.record, run.manifest.as_ref())?;
    }
    Ok((run.record, run.repartition))
}

/// Surfaces quarantined function units: one warning per unit on
/// stderr, a report in `--metrics` output, and exit 1 unless
/// `--allow-quarantine` accepts the fallback placement.
fn report_quarantine(o: &Options, records: &[UnitRecord]) -> Result<(), CliError> {
    let quarantined: Vec<_> = records.iter().flat_map(|r| r.quarantine.iter()).collect();
    if quarantined.is_empty() {
        return Ok(());
    }
    for q in &quarantined {
        eprintln!("warning: quarantined `{}` after {} attempts: {}", q.unit, q.attempts, q.reason);
    }
    if o.metrics {
        outln!("quarantine report: {} unit(s)", quarantined.len());
        for q in &quarantined {
            outln!("  {} ({} attempts): {}", q.unit, q.attempts, q.reason);
        }
    }
    if o.allow_quarantine {
        Ok(())
    } else {
        Err(CliError::Runtime(format!(
            "{} unit(s) quarantined (rerun with --allow-quarantine to accept the fallback \
             placement)",
            quarantined.len()
        )))
    }
}

fn report_run(
    program: &Program,
    profile: &Profile,
    o: &Options,
    baseline: Option<std::sync::Arc<Manifest>>,
) -> Result<(), CliError> {
    let machine = machine_of(o)?;
    let obs = obs_of(o);
    let mut session = CheckpointSession::open(o, program)?;
    let (rec, repartition) =
        run_or_resume(program, profile, &machine, o, o.method, &obs, &mut session, baseline)?;
    report_downgrades(&rec.downgrades);
    outln!("benchmark: {}", program.name);
    outln!("machine:   {} clusters, {}-cycle moves", o.clusters, o.latency);
    if rec.requested != rec.method {
        outln!("method:    {} (downgraded from {})", rec.method, rec.requested);
    } else {
        outln!("method:    {}", rec.method);
    }
    outln!("cycles:    {}", rec.cycles);
    outln!("moves:     {} dynamic intercluster ({} static)", rec.dynamic_moves, rec.moves_inserted);
    if rec.remote > 0 {
        outln!("remote:    {} dynamic remote accesses", rec.remote);
    }
    outln!("data:      {:?} bytes per cluster", rec.data_bytes);
    outln!("ops:       {:?} per cluster", rec.placement().ops_per_cluster(o.clusters));
    outln!("pressure:  {} live registers at the worst block boundary", rec.pressure);
    outln!("partition: {:.1} ms", rec.partition_ms);
    // Dirty-cone counters land after the unit's pinned events, so the
    // incremental trace is the from-scratch trace plus a trailing
    // `repartition/*` block.
    if let Some(rp) = &repartition {
        obs.counter("repartition", "dirty_funcs", rp.dirty_funcs as i64);
        obs.counter("repartition", "replayed_funcs", rp.replayed_funcs as i64);
        obs.counter("repartition", "cone_frac_x1000", rp.cone_frac_x1000() as i64);
        outln!(
            "repartition: {} dirty / {} replayed of {} functions (cone {:.1}%)",
            rp.dirty_funcs,
            rp.replayed_funcs,
            rp.total_funcs,
            rp.cone_frac_x1000() as f64 / 10.0
        );
    }
    emit_obs(o, &obs)?;
    report_quarantine(o, std::slice::from_ref(&rec))
}

/// Options of `mcpart serve`, split from [`Options`] because most
/// one-shot flags (checkpointing, per-run method/machine choices) are
/// carried by the job files instead.
struct ServeOptions {
    cfg: ServeConfig,
    trace_out: Option<String>,
    metrics: bool,
}

fn parse_serve_options(args: &[String]) -> Result<ServeOptions, String> {
    let mut cfg = ServeConfig::default();
    let mut trace_out = None;
    let mut metrics = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--drain" => cfg.drain = true,
            "--jobs" => {
                cfg.jobs =
                    args.get(i + 1).and_then(|v| v.parse().ok()).ok_or("--jobs needs a number")?;
                i += 1;
            }
            "--batch" => {
                cfg.batch = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--batch needs a positive count")?;
                i += 1;
            }
            "--queue" => {
                cfg.queue = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--queue needs a positive count")?;
                i += 1;
            }
            "--poll-ms" => {
                let ms: u64 = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--poll-ms needs a millisecond count")?;
                cfg.poll = Duration::from_millis(ms);
                i += 1;
            }
            "--retries" => {
                cfg.retries = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--retries needs a number")?;
                i += 1;
            }
            "--unit-timeout" => {
                let ms: u64 = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&ms| ms > 0)
                    .ok_or("--unit-timeout needs a positive millisecond count")?;
                cfg.unit_timeout = Some(Duration::from_millis(ms));
                i += 1;
            }
            "--halt-after" => {
                cfg.halt_after = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--halt-after needs a count")?,
                );
                i += 1;
            }
            "--telemetry-every" => {
                cfg.telemetry_every = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--telemetry-every needs a job count (0 disables)")?;
                i += 1;
            }
            "--max-requeues" => {
                cfg.max_requeues = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--max-requeues needs a count")?;
                i += 1;
            }
            "--trace-out" => {
                trace_out = Some(args.get(i + 1).ok_or("--trace-out needs a path")?.to_string());
                i += 1;
            }
            "--metrics" => metrics = true,
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    Ok(ServeOptions { cfg, trace_out, metrics })
}

/// Set by the signal handler; polled by the serve loop, which drains
/// the in-flight batch and exits 0 — crash-only shutdown.
static SERVE_SHUTDOWN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn serve_shutdown_handler(_signum: i32) {
    // Only async-signal-safe work here: set the flag, nothing else.
    SERVE_SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers that request a drain-and-exit.
/// `libc::signal` via a minimal FFI declaration: the workspace takes
/// no external dependencies, and storing to a static `AtomicBool` is
/// the one thing a handler may safely do.
#[cfg(unix)]
fn install_shutdown_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `signal` is the C standard library's handler
    // registration; the handler only stores to an atomic.
    unsafe {
        signal(SIGTERM, serve_shutdown_handler as *const () as usize);
        signal(SIGINT, serve_shutdown_handler as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_shutdown_handler() {}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result: Result<(), CliError> = match command {
        "list" => {
            outln!(
                "{:<12} {:>6} {:>8} {:>9} {:>12}",
                "benchmark",
                "ops",
                "objects",
                "bytes",
                "suite"
            );
            for w in mcpart::workloads::all() {
                outln!(
                    "{:<12} {:>6} {:>8} {:>9} {:>12}",
                    w.name,
                    w.num_ops(),
                    w.num_objects(),
                    w.program.total_object_size(),
                    w.suite.to_string()
                );
            }
            Ok(())
        }
        "run" | "exec" => (|| {
            let target = args.get(1).ok_or_else(|| {
                CliError::usage(format!("{command} needs a benchmark name or .mcir file"))
            })?;
            let o = parse_options(&args[2..]).map_err(CliError::Usage)?;
            let (program, profile) = load_target_cli(target)?;
            report_run(&program, &profile, &o, None)?;
            Ok(())
        })(),
        "repartition" => (|| {
            let target = args.get(1).ok_or_else(|| {
                CliError::usage("repartition needs a benchmark name or .mcir file")
            })?;
            // `--baseline` is this command's own flag; everything else
            // is the shared run-option vocabulary.
            let mut baseline_path: Option<String> = None;
            let mut rest: Vec<String> = Vec::new();
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                if a == "--baseline" {
                    baseline_path = Some(
                        it.next()
                            .ok_or_else(|| CliError::usage("--baseline needs a checkpoint path"))?
                            .clone(),
                    );
                } else {
                    rest.push(a.clone());
                }
            }
            let baseline_path = baseline_path
                .ok_or_else(|| CliError::usage("repartition requires --baseline <checkpoint>"))?;
            let o = parse_options(&rest).map_err(CliError::Usage)?;
            if o.method != Method::Gdp {
                return Err(CliError::usage(
                    "repartition only supports --method gdp (the manifest-bearing method)",
                ));
            }
            let (program, profile) = load_target_cli(target)?;
            let header = header_of(&o, &program);
            let ck = mcpart::core::load_checkpoint_any(&baseline_path).map_err(ck_err)?;
            if !ck.header.compatible_baseline(&header) {
                return Err(CliError::Config(format!(
                    "{baseline_path}: baseline is incompatible with this run (program name, \
                     seed, clusters, latency, memory, and gdp fuel must all match; only the \
                     program content may differ)"
                )));
            }
            let unit = format!("{}/{}", program.name, method_slug(o.method));
            let manifest = ck.manifest_for(&unit).cloned();
            if manifest.is_none() {
                eprintln!("note: {baseline_path}: no manifest for `{unit}`; running from scratch");
            }
            report_run(&program, &profile, &o, manifest.map(std::sync::Arc::new))
        })(),
        "compare" => (|| {
            let target = args
                .get(1)
                .ok_or_else(|| CliError::usage("compare needs a benchmark name or file"))?;
            let o = parse_options(&args[2..]).map_err(CliError::Usage)?;
            let (program, profile) = load_target_cli(target)?;
            let machine = machine_of(&o)?;
            let obs = obs_of(&o);
            let mut session = CheckpointSession::open(&o, &program)?;
            let mut unified = 0u64;
            let mut rows = Vec::new();
            let mut records = Vec::new();
            for method in Method::ALL {
                let (rec, _) = run_or_resume(
                    &program,
                    &profile,
                    &machine,
                    &o,
                    method,
                    &obs,
                    &mut session,
                    None,
                )?;
                report_downgrades(&rec.downgrades);
                if method == Method::Unified {
                    unified = rec.cycles;
                }
                let label = if rec.requested != rec.method {
                    format!("{}->{}", rec.requested, rec.method)
                } else {
                    method.to_string()
                };
                rows.push((label, rec.cycles, rec.dynamic_moves));
                records.push(rec);
            }
            outln!("{:<14} {:>10} {:>10} {:>10}", "method", "cycles", "moves", "vs unified");
            for (label, cycles, moves) in rows {
                outln!(
                    "{:<14} {:>10} {:>10} {:>9.1}%",
                    label,
                    cycles,
                    moves,
                    unified as f64 / cycles as f64 * 100.0
                );
            }
            emit_obs(&o, &obs)?;
            report_quarantine(&o, &records)
        })(),
        "dump" => (|| {
            let target =
                args.get(1).ok_or_else(|| CliError::usage("dump needs a benchmark name"))?;
            let (program, _) = load_target_cli(target)?;
            print!("{}", program_to_string(&program));
            Ok(())
        })(),
        "gen" => (|| {
            let spec = args.get(1).ok_or_else(|| {
                CliError::usage("gen needs a spec (synth_10k/synth_100k/synth_1m or key=value,...)")
            })?;
            let mut out: Option<&str> = None;
            let mut rest = args[2..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--out" => {
                        out = Some(
                            rest.next()
                                .ok_or_else(|| CliError::usage("--out needs a path"))?
                                .as_str(),
                        );
                    }
                    other => return Err(CliError::usage(format!("unknown gen option {other}"))),
                }
            }
            let w = mcpart::workloads::synth_result(spec)
                .map_err(|e| CliError::Usage(format!("`{spec}`: {e}")))?;
            outln!("name:      {}", w.name);
            outln!("functions: {}", w.program.functions.len());
            outln!("ops:       {}", w.num_ops());
            outln!("objects:   {}", w.num_objects());
            outln!("bytes:     {}", w.program.total_object_size());
            if let Some(path) = out {
                std::fs::write(path, program_to_string(&w.program))
                    .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
                outln!("wrote:     {path}");
            }
            Ok(())
        })(),
        "schedule" => (|| {
            // Show the timeline of the hottest block under the chosen
            // method.
            let target = args
                .get(1)
                .ok_or_else(|| CliError::usage("schedule needs a benchmark name or file"))?;
            let o = parse_options(&args[2..]).map_err(CliError::Usage)?;
            let (program, profile) = load_target_cli(target)?;
            let machine = machine_of(&o)?;
            let obs = obs_of(&o);
            let config = config_of(&o, o.method).with_obs(obs.clone());
            let run =
                run_pipeline(&program, &profile, &machine, &config).map_err(|e| e.to_string())?;
            report_downgrades(&run.downgrades);
            let mut hottest = None;
            for (fid, f) in run.program.functions.iter() {
                for bid in f.blocks.keys() {
                    let sched = &run.report.schedules[fid][bid];
                    let weight = sched.length as u64 * profile.block_freq(fid, bid);
                    if hottest.as_ref().map(|&(w, _, _)| weight > w).unwrap_or(true) {
                        hottest = Some((weight, fid, bid));
                    }
                }
            }
            let (weight, fid, bid) =
                hottest.ok_or_else(|| CliError::Runtime("program has no blocks".into()))?;
            outln!(
                "hottest block: {}/{bid} ({} weighted cycles) under {}",
                run.program.functions[fid].name,
                weight,
                run.method
            );
            outln!(
                "{}",
                mcpart::sched::schedule_to_string(
                    &run.program,
                    fid,
                    &run.report.schedules[fid][bid],
                    &run.placement,
                    o.clusters,
                )
            );
            emit_obs(&o, &obs)?;
            Ok(())
        })(),
        "partition" => (|| {
            let target = args
                .get(1)
                .ok_or_else(|| CliError::usage("partition needs a benchmark name or file"))?;
            let o = parse_options(&args[2..]).map_err(CliError::Usage)?;
            let (program, profile) = load_target_cli(target)?;
            let machine = machine_of(&o)?;
            let program = profile.apply_heap_sizes(&program);
            let pts = mcpart::analysis::PointsTo::compute(&program);
            let access = mcpart::analysis::AccessInfo::compute(&program, &pts, &profile);
            let groups = mcpart::core::ObjectGroups::compute(&program, &access);
            let obs = obs_of(&o);
            let gcfg =
                mcpart::core::GdpConfig { jobs: o.jobs, obs: obs.clone(), ..Default::default() };
            let dp =
                mcpart::core::gdp_partition(&program, &profile, &access, &groups, &machine, &gcfg)
                    .map_err(|e| e.to_string())?;
            outln!("object homes for {} (cut {}):", program.name, dp.cut);
            for (obj, home) in dp.object_home.iter() {
                if let Some(c) = home {
                    outln!("  {:<28} -> {}", program.objects[obj].name, c);
                }
            }
            outln!(
                "bytes per cluster: {:?}",
                dp.bytes_per_cluster(&program, machine.num_clusters())
            );
            emit_obs(&o, &obs)?;
            Ok(())
        })(),
        "serve" => (|| {
            let spool =
                args.get(1).ok_or_else(|| CliError::usage("serve needs a spool directory path"))?;
            let so = parse_serve_options(&args[2..]).map_err(CliError::Usage)?;
            let mut cfg = so.cfg;
            if so.trace_out.is_some() || so.metrics {
                cfg.obs = mcpart::obs::Obs::enabled();
            }
            install_shutdown_handler();
            mcpart::core::serve(std::path::Path::new(spool), &cfg, &load_target, &SERVE_SHUTDOWN)
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            if let Some(path) = &so.trace_out {
                std::fs::write(path, cfg.obs.chrome_trace())
                    .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
            }
            if so.metrics {
                outln!("{}", cfg.obs.summary());
            }
            Ok(())
        })(),
        "chaos" => (|| {
            let rest = &args[1..];
            let mut scenarios: Option<usize> = None;
            let mut seed: u64 = 0xC4A05;
            let mut shrink = true;
            let mut corpus: Option<String> = None;
            let mut replay: Option<String> = None;
            let mut sweep_path: Option<String> = None;
            let mut jobs_compare: usize = 4;
            let mut trace_out: Option<String> = None;
            let mut metrics = false;
            let mut inject_bad = false;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--seed" => {
                        seed = rest
                            .get(i + 1)
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| CliError::usage("--seed needs a number"))?;
                        i += 1;
                    }
                    "--shrink" => shrink = true,
                    "--no-shrink" => shrink = false,
                    "--corpus" => {
                        corpus = Some(
                            rest.get(i + 1)
                                .ok_or_else(|| CliError::usage("--corpus needs a directory"))?
                                .to_string(),
                        );
                        i += 1;
                    }
                    "--replay" => {
                        replay = Some(
                            rest.get(i + 1)
                                .ok_or_else(|| CliError::usage("--replay needs a repro file"))?
                                .to_string(),
                        );
                        i += 1;
                    }
                    "--sweep" => {
                        sweep_path = Some(
                            rest.get(i + 1)
                                .ok_or_else(|| CliError::usage("--sweep needs a matrix file"))?
                                .to_string(),
                        );
                        i += 1;
                    }
                    "--jobs" => {
                        jobs_compare = rest
                            .get(i + 1)
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| CliError::usage("--jobs needs a number"))?;
                        i += 1;
                    }
                    "--trace-out" => {
                        trace_out = Some(
                            rest.get(i + 1)
                                .ok_or_else(|| CliError::usage("--trace-out needs a path"))?
                                .to_string(),
                        );
                        i += 1;
                    }
                    "--metrics" => metrics = true,
                    "--inject-bad-placement" => inject_bad = true,
                    other if !other.starts_with('-') && scenarios.is_none() => {
                        scenarios = Some(other.parse().map_err(|_| {
                            CliError::usage(format!("`{other}` is not a scenario count"))
                        })?);
                    }
                    other => {
                        return Err(CliError::usage(format!("unknown chaos option `{other}`")))
                    }
                }
                i += 1;
            }
            let mut cfg = mcpart::core::ChaosConfig::new(scenarios.unwrap_or(0), seed);
            cfg.shrink = shrink;
            cfg.corpus = corpus.map(std::path::PathBuf::from);
            cfg.jobs_compare = jobs_compare;
            cfg.inject_bad_placement = inject_bad;
            if trace_out.is_some() || metrics {
                cfg.obs = mcpart::obs::Obs::enabled();
            }
            if let Some(path) = &sweep_path {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CliError::Runtime(format!("cannot read {path}: {e}")))?;
                cfg.sweep = mcpart::machine::SweepMatrix::parse(&text)
                    .map_err(|e| CliError::Config(format!("{path}: {e}")))?;
                cfg.sweep
                    .validate()
                    .map_err(|e| CliError::Config(format!("{path}: unusable sweep: {e}")))?;
            }
            let chaos_err = |e: mcpart::core::ChaosError| match e {
                mcpart::core::ChaosError::Io { .. } => CliError::Runtime(e.to_string()),
                other => CliError::Config(other.to_string()),
            };
            let emit = |obs: &mcpart::obs::Obs| -> Result<(), CliError> {
                if let Some(path) = &trace_out {
                    std::fs::write(path, obs.chrome_trace())
                        .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
                }
                if metrics {
                    outln!("{}", obs.summary());
                }
                Ok(())
            };
            if let Some(path) = &replay {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CliError::Runtime(format!("cannot read {path}: {e}")))?;
                let scenario = mcpart::core::Scenario::parse(&text)
                    .map_err(|e| CliError::Config(format!("{path}: {e}")))?;
                let result = mcpart::core::run_scenario(&scenario, &cfg).map_err(chaos_err)?;
                outln!(
                    "replay {path}: {} ({} oracle check(s))",
                    result.verdict.slug(),
                    result.checks_run
                );
                for line in result.detail.lines() {
                    outln!("  {line}");
                }
                emit(&cfg.obs)?;
                if result.failed() {
                    return Err(CliError::Runtime(format!(
                        "replayed scenario failed: {}",
                        result.verdict.slug()
                    )));
                }
                return Ok(());
            }
            let n = scenarios.ok_or_else(|| {
                CliError::usage("chaos needs a scenario count (or --replay <file>)")
            })?;
            cfg.scenarios = n;
            let sum = mcpart::core::run_chaos(&cfg).map_err(chaos_err)?;
            for (k, f) in sum.failures.iter().enumerate() {
                outln!("failure {k}: {}", f.verdict.slug());
                for line in f.detail.lines() {
                    outln!("  {line}");
                }
                outln!("  scenario:");
                for line in f.scenario.to_string().lines() {
                    outln!("    {line}");
                }
            }
            for p in &sum.repro_files {
                outln!("repro written: {}", p.display());
            }
            outln!("{}", sum.line());
            emit(&cfg.obs)?;
            if sum.failures.is_empty() {
                Ok(())
            } else {
                Err(CliError::Runtime(format!(
                    "{} scenario(s) failed the oracle",
                    sum.failures.len()
                )))
            }
        })(),
        "trace-check" => (|| {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::usage("trace-check needs a trace file path"))?;
            // Each `--require` entry is `cat/name` (presence) or
            // `cat/name=v` (the counter's last sample must equal v).
            let mut require: Vec<(String, Option<i64>)> = Vec::new();
            let mut forbid: Vec<String> = Vec::new();
            let rest = &args[2..];
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--require" => {
                        let v = rest.get(i + 1).ok_or_else(|| {
                            CliError::usage("--require needs a comma-separated counter list")
                        })?;
                        for item in v.split(',').filter(|s| !s.is_empty()) {
                            match item.split_once('=') {
                                Some((label, want)) => {
                                    let want: i64 = want.parse().map_err(|_| {
                                        CliError::usage(format!(
                                            "--require {label}=<value> needs an integer, got \
                                             `{want}`"
                                        ))
                                    })?;
                                    require.push((label.to_string(), Some(want)));
                                }
                                None => require.push((item.to_string(), None)),
                            }
                        }
                        i += 1;
                    }
                    "--forbid" => {
                        let v = rest.get(i + 1).ok_or_else(|| {
                            CliError::usage("--forbid needs a comma-separated counter list")
                        })?;
                        forbid.extend(v.split(',').filter(|s| !s.is_empty()).map(str::to_string));
                        i += 1;
                    }
                    other => return Err(CliError::usage(format!("unknown option `{other}`"))),
                }
                i += 1;
            }
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let stats = mcpart::obs::json::validate_trace(&text)
                .map_err(|e| format!("{path}: invalid trace: {e}"))?;
            for w in &stats.warnings {
                eprintln!("warning: {path}: {w}");
            }
            if stats.events == 0 {
                return Err(CliError::Runtime(format!("{path}: trace has no events")));
            }
            for (label, want) in &require {
                if !stats.has_counter(label) {
                    return Err(CliError::Runtime(format!(
                        "{path}: missing required counter `{label}`"
                    )));
                }
                if let Some(want) = want {
                    match stats.counter_value(label) {
                        Some(got) if got == *want => {}
                        Some(got) => {
                            return Err(CliError::Runtime(format!(
                                "{path}: counter `{label}` is {got}, expected {want}"
                            )));
                        }
                        None => {
                            return Err(CliError::Runtime(format!(
                                "{path}: counter `{label}` has no numeric sample to compare \
                                 against {want}"
                            )));
                        }
                    }
                }
            }
            for label in &forbid {
                if stats.counter_nonzero.contains(label) {
                    return Err(CliError::Runtime(format!(
                        "{path}: forbidden counter `{label}` recorded a nonzero sample"
                    )));
                }
            }
            outln!(
                "{path}: ok ({} events: {} spans, {} counter samples)",
                stats.events,
                stats.spans,
                stats.counters
            );
            Ok(())
        })(),
        "stats" => (|| {
            let target = args.get(1).ok_or_else(|| {
                CliError::usage("stats needs a telemetry directory or trace file path")
            })?;
            let mut pinned_only = false;
            for a in &args[2..] {
                match a.as_str() {
                    "--pinned" => pinned_only = true,
                    other => return Err(CliError::usage(format!("unknown option `{other}`"))),
                }
            }
            let path = std::path::Path::new(target);
            let telemetry = path.is_dir()
                || path.file_name().and_then(|n| n.to_str())
                    == Some(mcpart::obs::recorder::TELEMETRY_LOG);
            let registry = if telemetry {
                let log =
                    mcpart::obs::recorder::read_telemetry_dir(path).map_err(CliError::Runtime)?;
                if log.skipped > 0 {
                    eprintln!(
                        "warning: {target}: skipped {} corrupt telemetry record(s)",
                        log.skipped
                    );
                }
                if log.snapshots.is_empty() {
                    return Err(CliError::Runtime(format!(
                        "{target}: no valid telemetry snapshots"
                    )));
                }
                let (registry, counters) = log.merged();
                if !pinned_only {
                    let runs = log.snapshots.iter().map(|s| s.run).collect::<BTreeSet<_>>();
                    outln!(
                        "telemetry: {} snapshot(s) across {} run(s)",
                        log.snapshots.len(),
                        runs.len()
                    );
                    outln!("counters (summed across runs):");
                    for (name, value) in &counters {
                        outln!("  {name:<24} {value}");
                    }
                }
                registry
            } else {
                let text = std::fs::read_to_string(target)
                    .map_err(|e| format!("cannot read {target}: {e}"))?;
                mcpart::obs::metrics::MetricsRegistry::from_trace(&text)
                    .map_err(|e| CliError::Runtime(format!("{target}: {e}")))?
            };
            if pinned_only {
                outln!("{}", registry.pinned_json());
                return Ok(());
            }
            if registry.is_empty() {
                outln!("no metric samples recorded");
            } else {
                outln!("{}", registry.render_table());
            }
            Ok(())
        })(),
        "bench-diff" => (|| {
            let (old, new) = match (args.get(1), args.get(2)) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(CliError::usage(
                        "bench-diff needs two BENCH_partition.json paths (old, new)",
                    ))
                }
            };
            let mut cfg = mcpart_bench::diff::DiffConfig::default();
            let rest = &args[3..];
            let mut i = 0;
            while i < rest.len() {
                let pct_arg = |flag: &str| -> Result<f64, CliError> {
                    rest.get(i + 1)
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|p| *p >= 0.0)
                        .map(|p| p / 100.0)
                        .ok_or_else(|| {
                            CliError::usage(format!("{flag} needs a non-negative percentage"))
                        })
                };
                match rest[i].as_str() {
                    "--threshold" => {
                        cfg.work_threshold = pct_arg("--threshold")?;
                        i += 1;
                    }
                    "--time-threshold" => {
                        cfg.time_threshold = pct_arg("--time-threshold")?;
                        i += 1;
                    }
                    other => return Err(CliError::usage(format!("unknown option `{other}`"))),
                }
                i += 1;
            }
            let read = |path: &str| -> Result<String, CliError> {
                std::fs::read_to_string(path)
                    .map_err(|e| CliError::Runtime(format!("cannot read {path}: {e}")))
            };
            let (old_text, new_text) = (read(old)?, read(new)?);
            let report = mcpart_bench::diff::diff_bench(&old_text, &new_text, &cfg)
                .map_err(|e| CliError::Config(e.to_string()))?;
            outln!("{}", report.render());
            if report.regressed() {
                return Err(CliError::Runtime(format!(
                    "{} regression(s) against {old}",
                    report.regressions.len()
                )));
            }
            Ok(())
        })(),
        "checkpoint-diff" => (|| {
            let (a, b) = match (args.get(1), args.get(2)) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(CliError::usage("checkpoint-diff needs two checkpoint paths")),
            };
            let load = |path: &str| -> Result<(Vec<UnitRecord>, Vec<Manifest>), CliError> {
                let ck = mcpart::core::load_checkpoint_any(path).map_err(|e| match e {
                    CheckpointError::Io(m) => CliError::Runtime(m),
                    other => CliError::Config(format!("{path}: {other}")),
                })?;
                Ok((ck.records, ck.manifests))
            };
            // Wall-clock is the one non-pinned record field; everything
            // else (placements, downgrades, quarantine, pinned events)
            // must match exactly.
            let strip = |mut r: UnitRecord| {
                r.partition_ms = 0.0;
                r
            };
            let (a_raw, a_manifests) = load(a)?;
            let (b_raw, b_manifests) = load(b)?;
            let a_records: Vec<UnitRecord> = a_raw.into_iter().map(strip).collect();
            let b_records: Vec<UnitRecord> = b_raw.into_iter().map(strip).collect();
            if a_records.len() != b_records.len() {
                return Err(CliError::Runtime(format!(
                    "checkpoints differ: {a} has {} unit(s), {b} has {}",
                    a_records.len(),
                    b_records.len()
                )));
            }
            for (ra, rb) in a_records.iter().zip(&b_records) {
                if ra != rb {
                    let what = if ra.unit != rb.unit {
                        format!("unit order differs (`{}` vs `{}`)", ra.unit, rb.unit)
                    } else {
                        format!("unit `{}` differs", ra.unit)
                    };
                    return Err(CliError::Runtime(format!("checkpoints differ: {what}")));
                }
            }
            // Manifests compare as a set keyed by unit (append order is
            // a write-path detail), with deltas reported per function
            // in stable positional order. A manifest present on only
            // one side is not a difference: manifests are replay
            // hints, and a crash or an old writer may legitimately
            // drop one without changing any pinned result.
            let index = |ms: Vec<Manifest>| -> std::collections::BTreeMap<String, Manifest> {
                ms.into_iter().map(|m| (m.unit.clone(), m)).collect()
            };
            let (ma, mb) = (index(a_manifests), index(b_manifests));
            let units: BTreeSet<&String> = ma.keys().chain(mb.keys()).collect();
            let mut deltas: Vec<String> = Vec::new();
            for unit in units {
                match (ma.get(unit), mb.get(unit)) {
                    (Some(x), Some(y)) if x == y => {}
                    (Some(x), Some(y)) => {
                        let mut lines = Vec::new();
                        for i in 0..x.funcs.len().max(y.funcs.len()) {
                            match (x.funcs.get(i), y.funcs.get(i)) {
                                (Some(fa), Some(fb)) if fa == fb => {}
                                (Some(fa), Some(fb)) => {
                                    let mut what = Vec::new();
                                    if fa.name != fb.name {
                                        what.push("name");
                                    }
                                    if fa.hash != fb.hash {
                                        what.push("ir");
                                    }
                                    if fa.groups != fb.groups {
                                        what.push("groups");
                                    }
                                    if fa.op_cluster != fb.op_cluster {
                                        what.push("placement");
                                    }
                                    if fa.stats != fb.stats || fa.retries != fb.retries {
                                        what.push("stats");
                                    }
                                    lines.push(format!(
                                        "  #{i} {}: {} changed",
                                        fa.name,
                                        what.join("+")
                                    ));
                                }
                                (Some(fa), None) => {
                                    lines.push(format!("  #{i} {}: only in {a}", fa.name));
                                }
                                (None, Some(fb)) => {
                                    lines.push(format!("  #{i} {}: only in {b}", fb.name));
                                }
                                (None, None) => {}
                            }
                        }
                        if x.groups != y.groups {
                            lines.push("  (group content/home table differs)".to_string());
                        }
                        deltas.push(format!("manifest `{unit}`: {} delta(s)", lines.len()));
                        deltas.append(&mut lines);
                    }
                    (Some(_), None) | (None, Some(_)) | (None, None) => {}
                }
            }
            if !deltas.is_empty() {
                for line in &deltas {
                    eprintln!("{line}");
                }
                return Err(CliError::Runtime(
                    "checkpoints differ: manifest deltas (see above)".to_string(),
                ));
            }
            outln!("checkpoints match: {} unit(s)", a_records.len());
            Ok(())
        })(),
        other => Err(CliError::usage(format!("unknown command `{other}`"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Runtime(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Err(CliError::Config(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
        Err(CliError::Usage(e)) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_parsing() {
        let args: Vec<String> = ["--latency", "10", "--method", "pm", "--memory", "coherent:7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_options(&args).unwrap();
        assert_eq!(o.latency, 10);
        assert_eq!(o.method, Method::ProfileMax);
        assert!(matches!(o.memory, MemoryChoice::Coherent(7)));
    }

    #[test]
    fn rejects_unknown_option() {
        let args = vec!["--bogus".to_string()];
        assert!(parse_options(&args).is_err());
    }

    #[test]
    fn rejects_zero_clusters() {
        let args: Vec<String> = ["--clusters", "0"].iter().map(|s| s.to_string()).collect();
        assert!(parse_options(&args).is_err());
    }

    #[test]
    fn rejects_non_numeric_latency() {
        let args: Vec<String> = ["--latency", "fast"].iter().map(|s| s.to_string()).collect();
        assert!(parse_options(&args).is_err());
    }

    #[test]
    fn gdp_fuel_option_feeds_the_config() {
        let args: Vec<String> = ["--gdp-fuel", "0"].iter().map(|s| s.to_string()).collect();
        let o = parse_options(&args).unwrap();
        assert_eq!(o.gdp_fuel, Some(0));
        assert_eq!(config_of(&o, Method::Gdp).gdp.fuel, Some(0));
        let bad: Vec<String> = ["--gdp-fuel", "lots"].iter().map(|s| s.to_string()).collect();
        assert!(parse_options(&bad).is_err());
    }

    #[test]
    fn jobs_option_feeds_the_config() {
        let args: Vec<String> = ["--jobs", "4"].iter().map(|s| s.to_string()).collect();
        let o = parse_options(&args).unwrap();
        assert_eq!(o.jobs, 4);
        assert_eq!(config_of(&o, Method::Gdp).rhop.jobs, 4);
        assert_eq!(config_of(&o, Method::Gdp).gdp.jobs, 4);
        // Default is 0 = auto.
        assert_eq!(parse_options(&[]).unwrap().jobs, 0);
        let bad: Vec<String> = ["--jobs", "many"].iter().map(|s| s.to_string()).collect();
        assert!(parse_options(&bad).is_err());
    }

    #[test]
    fn trace_and_metrics_options() {
        let args: Vec<String> =
            ["--trace-out", "t.json", "--metrics"].iter().map(|s| s.to_string()).collect();
        let o = parse_options(&args).unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("t.json"));
        assert!(o.metrics);
        assert!(obs_of(&o).is_enabled());
        // Either flag alone turns the sink on; neither leaves it off.
        let just_metrics = parse_options(&["--metrics".to_string()]).unwrap();
        assert!(obs_of(&just_metrics).is_enabled());
        assert!(!obs_of(&Options::default()).is_enabled());
        assert!(parse_options(&["--trace-out".to_string()]).is_err());
    }

    #[test]
    fn obs_flows_into_every_stage_config() {
        let o = parse_options(&["--metrics".to_string()]).unwrap();
        let cfg = config_of(&o, Method::Gdp).with_obs(obs_of(&o));
        assert!(cfg.obs.is_enabled());
        assert!(cfg.gdp.obs.is_enabled());
        assert!(cfg.rhop.obs.is_enabled());
    }

    #[test]
    fn method_names() {
        assert_eq!(parse_method("gdp"), Some(Method::Gdp));
        assert_eq!(parse_method("profile-max"), Some(Method::ProfileMax));
        assert_eq!(parse_method("nonsense"), None);
    }
}
