#!/usr/bin/env bash
# Partitioning-pipeline performance benchmark. Builds the harness in
# release mode and runs `bench_partition`, which writes a JSON report
# (per-workload stage wall-clock, estimator-call accounting, the
# incremental-estimation ablation, the parallel suite speedup, and the
# incremental re-partitioning speedup of a one-function edit replayed
# against a manifest baseline — `repartition_speedup`, gated upward by
# `mcpart bench-diff` like the other suite metrics).
#
#   scripts/bench.sh                  # full run -> BENCH_partition.json
#   scripts/bench.sh --quick          # 3-workload smoke run, 1 rep
#   scripts/bench.sh --jobs 4         # pin the worker count
#   scripts/bench.sh --out path.json  # report path
#   scripts/bench.sh --diff-against old.json
#                                     # after the run, gate the fresh
#                                     # report against a baseline with
#                                     # `mcpart bench-diff` (exit 1 on
#                                     # regression)
#   scripts/bench.sh --scale          # run `bench_scale` instead: the
#                                     # 10^4/10^5/10^6-op synthetic
#                                     # trajectory -> BENCH_scale.json
#                                     # (ops/sec, peak graph bytes, the
#                                     # --jobs curve; combinable with
#                                     # --quick/--out/--diff-against)
#
# Extra arguments are forwarded to the binary (e.g. --benchmarks a,b).
# The observability metrics (--metrics: GDP cut and balance folded into
# the per-workload rows) are always on here; pass-through callers that
# want the raw binary without them can invoke it directly.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=""
BIN=bench_partition
OUT=""
ARGS=()
while [ $# -gt 0 ]; do
  case "$1" in
    --scale)
      BIN=bench_scale; shift ;;
    --diff-against)
      BASELINE=${2:?--diff-against needs a baseline path}; shift 2 ;;
    --out)
      OUT=${2:?--out needs a path}; ARGS+=("--out" "$OUT"); shift 2 ;;
    *)
      ARGS+=("$1"); shift ;;
  esac
done
if [ -z "$OUT" ]; then
  if [ "$BIN" = bench_scale ]; then OUT=BENCH_scale.json; else OUT=BENCH_partition.json; fi
fi

cargo build --release -p mcpart-bench --bin "$BIN"
if [ -n "$BASELINE" ]; then
  cargo build --release --bin mcpart
fi
if [ "$BIN" = bench_scale ]; then
  # bench_scale has no --metrics switch: its observability pass (peak
  # graph bytes, coarsening levels, cut) is always on.
  target/release/bench_scale ${ARGS+"${ARGS[@]}"}
else
  target/release/bench_partition --metrics ${ARGS+"${ARGS[@]}"}
fi
if [ -n "$BASELINE" ]; then
  target/release/mcpart bench-diff "$BASELINE" "$OUT"
fi
