#!/usr/bin/env bash
# Partitioning-pipeline performance benchmark. Builds the harness in
# release mode and runs `bench_partition`, which writes a JSON report
# (per-workload stage wall-clock, estimator-call accounting, the
# incremental-estimation ablation and the parallel suite speedup).
#
#   scripts/bench.sh                  # full run -> BENCH_partition.json
#   scripts/bench.sh --quick          # 3-workload smoke run, 1 rep
#   scripts/bench.sh --jobs 4         # pin the worker count
#   scripts/bench.sh --out path.json  # report path
#
# Extra arguments are forwarded to the binary (e.g. --benchmarks a,b).
# The observability metrics (--metrics: GDP cut and balance folded into
# the per-workload rows) are always on here; pass-through callers that
# want the raw binary without them can invoke it directly.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p mcpart-bench --bin bench_partition
exec target/release/bench_partition --metrics "$@"
