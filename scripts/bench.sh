#!/usr/bin/env bash
# Partitioning-pipeline performance benchmark. Builds the harness in
# release mode and runs `bench_partition`, which writes a JSON report
# (per-workload stage wall-clock, estimator-call accounting, the
# incremental-estimation ablation and the parallel suite speedup).
#
#   scripts/bench.sh                  # full run -> BENCH_partition.json
#   scripts/bench.sh --quick          # 3-workload smoke run, 1 rep
#   scripts/bench.sh --jobs 4         # pin the worker count
#   scripts/bench.sh --out path.json  # report path
#   scripts/bench.sh --diff-against old.json
#                                     # after the run, gate the fresh
#                                     # report against a baseline with
#                                     # `mcpart bench-diff` (exit 1 on
#                                     # regression)
#
# Extra arguments are forwarded to the binary (e.g. --benchmarks a,b).
# The observability metrics (--metrics: GDP cut and balance folded into
# the per-workload rows) are always on here; pass-through callers that
# want the raw binary without them can invoke it directly.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=""
OUT=BENCH_partition.json
ARGS=()
while [ $# -gt 0 ]; do
  case "$1" in
    --diff-against)
      BASELINE=${2:?--diff-against needs a baseline path}; shift 2 ;;
    --out)
      OUT=${2:?--out needs a path}; ARGS+=("--out" "$OUT"); shift 2 ;;
    *)
      ARGS+=("$1"); shift ;;
  esac
done

cargo build --release -p mcpart-bench --bin bench_partition
if [ -n "$BASELINE" ]; then
  cargo build --release --bin mcpart
fi
target/release/bench_partition --metrics ${ARGS+"${ARGS[@]}"}
if [ -n "$BASELINE" ]; then
  target/release/mcpart bench-diff "$BASELINE" "$OUT"
fi
