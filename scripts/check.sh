#!/usr/bin/env bash
# Single CI/PR gate for the mcpart workspace: build, test, lint, format.
# Referenced from .claude/skills/verify/SKILL.md — every PR runs this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy --workspace --all-targets -- -W clippy::perf"
cargo clippy --workspace --all-targets -- -W clippy::perf

echo "== cargo fmt --check"
cargo fmt --check

echo "== scripts/bench.sh --quick (smoke)"
scripts/bench.sh --quick --out /tmp/BENCH_partition.quick.json >/dev/null
test -s /tmp/BENCH_partition.quick.json

echo "== trace export smoke (--trace-out + trace-check + stats)"
target/release/mcpart run rawcaudio --trace-out /tmp/mcpart_trace.json --metrics >/dev/null
target/release/mcpart trace-check /tmp/mcpart_trace.json \
  --require gdp/cut,rhop/estimator_calls,sim/cycles,sim/stall_cycles,sim/transfer_cycles,supervise/retries,supervise/quarantined
# A clean run: supervision counters end at zero and never fired.
target/release/mcpart trace-check /tmp/mcpart_trace.json \
  --require supervise/retries=0,supervise/quarantined=0 \
  --forbid supervise/retries,supervise/quarantined
STATS_OUT=$(target/release/mcpart stats /tmp/mcpart_trace.json)
for col in p50 p90 p99 "gdp/cut" "rhop/estimator_calls"; do
  # grep -q would exit early and SIGPIPE the echo under pipefail.
  [[ "$STATS_OUT" == *"$col"* ]] \
    || { echo "stats output missing $col:"; echo "$STATS_OUT"; exit 1; }
done

echo "== bench-diff gate (self-diff clean, perturbed copy regresses)"
target/release/mcpart bench-diff /tmp/BENCH_partition.quick.json /tmp/BENCH_partition.quick.json
# Prefix a 9 onto every cycles value (~10x growth): must trip the gate.
sed 's/"cycles":/"cycles":9/' /tmp/BENCH_partition.quick.json > /tmp/BENCH_partition.perturbed.json
if target/release/mcpart bench-diff /tmp/BENCH_partition.quick.json /tmp/BENCH_partition.perturbed.json >/dev/null; then
  echo "bench-diff missed a 10x cycles regression"; exit 1
fi

echo "== kill-and-resume smoke (deterministic mid-append halt, --resume, checkpoint-diff)"
# --halt-after 2 dies mid-append of the second unit record (half a
# line, no terminator, then abort) — the exact artifact kill -9 leaves,
# with none of the scheduling race a real SIGKILL has.
rm -f /tmp/mcpart_ck_clean.json /tmp/mcpart_ck_killed.json
target/release/mcpart compare rawcaudio --checkpoint /tmp/mcpart_ck_clean.json >/dev/null
if target/release/mcpart compare rawcaudio --checkpoint /tmp/mcpart_ck_killed.json --halt-after 2 >/dev/null 2>&1; then
  echo "halted run unexpectedly survived"; exit 1
fi
RESUME_NOTES=$(target/release/mcpart compare rawcaudio --checkpoint /tmp/mcpart_ck_killed.json --resume 2>&1 >/dev/null)
echo "$RESUME_NOTES" | grep -q "partial trailing record" \
  || { echo "resume did not report the crash artifact: $RESUME_NOTES"; exit 1; }
target/release/mcpart checkpoint-diff /tmp/mcpart_ck_clean.json /tmp/mcpart_ck_killed.json

echo "== serve smoke (spool three jobs, die mid-batch, restart, verify cache hits)"
SERVE_CLEAN=/tmp/mcpart_serve_clean
SERVE_KILLED=/tmp/mcpart_serve_killed
rm -rf "$SERVE_CLEAN" "$SERVE_KILLED"
mkdir -p "$SERVE_CLEAN" "$SERVE_KILLED"
for b in fir latnrm rawcaudio; do
  echo "{\"mcpart_job\":1,\"program\":\"$b\"}" > "$SERVE_CLEAN/$b.job"
  echo "{\"mcpart_job\":1,\"program\":\"$b\"}" > "$SERVE_KILLED/$b.job"
done
target/release/mcpart serve "$SERVE_CLEAN" --drain >/dev/null
# Die mid-batch: one job committed, the next output half-written, the
# rest still claimed in work/ — what kill -9 leaves, deterministically.
if target/release/mcpart serve "$SERVE_KILLED" --drain --halt-after 1 >/dev/null 2>&1; then
  echo "halted serve run unexpectedly survived"; exit 1
fi
RESTART_LOG=$(target/release/mcpart serve "$SERVE_KILLED" --drain --metrics \
  --trace-out /tmp/mcpart_serve_trace.json)
echo "$RESTART_LOG" | grep -q "cache hit" \
  || { echo "restart reported no cache hits: $RESTART_LOG"; exit 1; }
for b in fir latnrm rawcaudio; do
  cmp "$SERVE_CLEAN/out/$b.json" "$SERVE_KILLED/out/$b.json" \
    || { echo "$b: post-crash output differs from clean run"; exit 1; }
done
target/release/mcpart trace-check /tmp/mcpart_serve_trace.json \
  --require serve/admitted,serve/rejected,serve/cache_hits,serve/cache_evictions,serve/quarantined \
  --forbid serve/quarantined

echo "== serve telemetry smoke (flight recorder + stats over the dir)"
test -s "$SERVE_KILLED/telemetry/telemetry.jsonl" \
  || { echo "flight recorder wrote no snapshots"; exit 1; }
TELEMETRY_OUT=$(target/release/mcpart stats "$SERVE_KILLED")
for needle in "telemetry:" completed "serve/job" p99; do
  [[ "$TELEMETRY_OUT" == *"$needle"* ]] \
    || { echo "telemetry stats missing $needle:"; echo "$TELEMETRY_OUT"; exit 1; }
done

echo "== scale smoke (10^5-op synthetic gen + partition under a wall bound)"
target/release/mcpart gen synth_100k >/dev/null
SCALE_START=$(date +%s)
target/release/mcpart partition synth_100k --jobs 4 \
  --trace-out /tmp/mcpart_scale_trace.json >/dev/null
SCALE_SECS=$(( $(date +%s) - SCALE_START ))
# Generous bound: ~1s release on this host; 60s catches an accidental
# return to quadratic edge folding without flaking on slow CI.
if [ "$SCALE_SECS" -gt 60 ]; then
  echo "10^5-op partition took ${SCALE_SECS}s (>60s wall bound)"; exit 1
fi
target/release/mcpart trace-check /tmp/mcpart_scale_trace.json \
  --require metis/coarsen_levels,metis/matched_frac_x1000,metis/peak_graph_bytes,gdp/cut

echo "== incremental re-partition smoke (one-function edit vs from-scratch)"
INCR=/tmp/mcpart_incr
rm -rf "$INCR"; mkdir -p "$INCR"
target/release/mcpart gen synth_100k --out "$INCR/prog.mcir" >/dev/null
target/release/mcpart run "$INCR/prog.mcir" --checkpoint "$INCR/base.ck" >/dev/null
# One-function edit: shrink one table-mask constant (stays in bounds,
# leaves the profile and GDP homes alone — the cone is one function).
sed '0,/= iconst 511$/s//= iconst 510/' "$INCR/prog.mcir" > "$INCR/edited.mcir"
cmp -s "$INCR/prog.mcir" "$INCR/edited.mcir" \
  && { echo "edit was a no-op (no mask constant found)"; exit 1; }
# Both sides trace so both checkpoint records carry pinned obs events
# (checkpoint-diff then checks replay fidelity, not just placements).
target/release/mcpart run "$INCR/edited.mcir" --checkpoint "$INCR/fresh.ck" \
  --trace-out "$INCR/fresh_trace.json" \
  | grep -v '^partition:' > "$INCR/fresh.txt"
target/release/mcpart repartition "$INCR/edited.mcir" --baseline "$INCR/base.ck" \
  --checkpoint "$INCR/inc.ck" --trace-out "$INCR/inc_trace.json" \
  | grep -v '^partition:\|^repartition:' > "$INCR/inc.txt"
target/release/mcpart trace-check "$INCR/inc_trace.json" \
  --require repartition/replayed_funcs,repartition/dirty_funcs,repartition/cone_frac_x1000
cmp "$INCR/fresh.txt" "$INCR/inc.txt" \
  || { echo "incremental stdout differs from from-scratch"; exit 1; }
target/release/mcpart checkpoint-diff "$INCR/fresh.ck" "$INCR/inc.ck"

echo "== chaos soak (500 seeded scenarios, independent oracle, 0 failures)"
target/release/mcpart chaos 500 --seed 20260807 \
  --trace-out /tmp/mcpart_chaos_trace.json > /tmp/mcpart_chaos_a.txt
grep -q " 0 failure(s)" /tmp/mcpart_chaos_a.txt \
  || { echo "chaos soak found oracle failures:"; cat /tmp/mcpart_chaos_a.txt; exit 1; }
# Bit-identical across repeat runs and jobs-invariance worker counts.
target/release/mcpart chaos 500 --seed 20260807 --jobs 2 > /tmp/mcpart_chaos_b.txt
cmp /tmp/mcpart_chaos_a.txt /tmp/mcpart_chaos_b.txt \
  || { echo "chaos soak is not deterministic across runs/worker counts"; exit 1; }
target/release/mcpart trace-check /tmp/mcpart_chaos_trace.json \
  --require chaos/scenarios=500,chaos/failures=0,chaos/shrink_steps=0,chaos/oracle_checks
# The oracle actually bites: an injected bad placement must fail the
# soak, shrink, and replay from the corpus.
CHAOS_CORPUS=/tmp/mcpart_chaos_corpus
rm -rf "$CHAOS_CORPUS"
if target/release/mcpart chaos 2 --seed 3 --inject-bad-placement \
    --corpus "$CHAOS_CORPUS" >/dev/null 2>&1; then
  echo "chaos soak missed an injected bad placement"; exit 1
fi
CHAOS_REPRO=$(ls "$CHAOS_CORPUS"/*.repro | head -1)
if target/release/mcpart chaos --replay "$CHAOS_REPRO" --inject-bad-placement >/dev/null; then
  echo "corpus repro did not reproduce the injected failure"; exit 1
fi
target/release/mcpart chaos --replay "$CHAOS_REPRO" >/dev/null \
  || { echo "corpus repro fails even without the injected bug"; exit 1; }

echo "== hardened-profile tests (overflow-checks + debug-assertions pinned)"
cargo test --profile overflow -q -p mcpart-machine -p mcpart-sched >/dev/null

echo "== all checks passed"
