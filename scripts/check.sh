#!/usr/bin/env bash
# Single CI/PR gate for the mcpart workspace: build, test, lint, format.
# Referenced from .claude/skills/verify/SKILL.md — every PR runs this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy --workspace --all-targets -- -W clippy::perf"
cargo clippy --workspace --all-targets -- -W clippy::perf

echo "== cargo fmt --check"
cargo fmt --check

echo "== scripts/bench.sh --quick (smoke)"
scripts/bench.sh --quick --out /tmp/BENCH_partition.quick.json >/dev/null
test -s /tmp/BENCH_partition.quick.json

echo "== trace export smoke (--trace-out + trace-check)"
target/release/mcpart run rawcaudio --trace-out /tmp/mcpart_trace.json --metrics >/dev/null
target/release/mcpart trace-check /tmp/mcpart_trace.json \
  --require gdp/cut,rhop/estimator_calls,sim/cycles,sim/stall_cycles,sim/transfer_cycles,supervise/retries,supervise/quarantined

echo "== kill-and-resume smoke (SIGKILL mid-run, --resume, checkpoint-diff)"
rm -f /tmp/mcpart_ck_clean.json /tmp/mcpart_ck_killed.json
target/release/mcpart compare rawcaudio --checkpoint /tmp/mcpart_ck_clean.json >/dev/null
target/release/mcpart compare rawcaudio --checkpoint /tmp/mcpart_ck_killed.json >/dev/null &
MCPART_PID=$!
sleep 0.05
kill -9 "$MCPART_PID" 2>/dev/null || true
wait "$MCPART_PID" 2>/dev/null || true
# If the run won the race and finished, truncate its checkpoint to a
# prefix plus a half-written record so the resume still has work to do.
if target/release/mcpart checkpoint-diff /tmp/mcpart_ck_clean.json /tmp/mcpart_ck_killed.json >/dev/null 2>&1; then
  { head -n 2 /tmp/mcpart_ck_clean.json; sed -n '3p' /tmp/mcpart_ck_clean.json | head -c 40; } \
    > /tmp/mcpart_ck_killed.json
fi
target/release/mcpart compare rawcaudio --checkpoint /tmp/mcpart_ck_killed.json --resume >/dev/null
target/release/mcpart checkpoint-diff /tmp/mcpart_ck_clean.json /tmp/mcpart_ck_killed.json

echo "== all checks passed"
