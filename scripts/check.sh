#!/usr/bin/env bash
# Single CI/PR gate for the mcpart workspace: build, test, lint, format.
# Referenced from .claude/skills/verify/SKILL.md — every PR runs this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy --workspace --all-targets -- -W clippy::perf"
cargo clippy --workspace --all-targets -- -W clippy::perf

echo "== cargo fmt --check"
cargo fmt --check

echo "== scripts/bench.sh --quick (smoke)"
scripts/bench.sh --quick --out /tmp/BENCH_partition.quick.json >/dev/null
test -s /tmp/BENCH_partition.quick.json

echo "== trace export smoke (--trace-out + trace-check)"
target/release/mcpart run rawcaudio --trace-out /tmp/mcpart_trace.json --metrics >/dev/null
target/release/mcpart trace-check /tmp/mcpart_trace.json \
  --require gdp/cut,rhop/estimator_calls,sim/cycles,sim/stall_cycles,sim/transfer_cycles

echo "== all checks passed"
