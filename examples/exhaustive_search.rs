//! Reproduce Figure 9 interactively: enumerate every data-object
//! mapping of a small benchmark, print the performance/balance scatter,
//! and mark where GDP's choice lands.
//!
//! Run with `cargo run --release --example exhaustive_search [benchmark]`.

use mcpart::analysis::{AccessInfo, PointsTo};
use mcpart::core::{
    evaluate_mapping, exhaustive_search, gdp_partition, GdpConfig, ObjectGroups, RhopConfig,
};
use mcpart::machine::Machine;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "rawcaudio".to_string());
    let w = mcpart::workloads::by_name(&name).expect("known benchmark");
    let machine = Machine::paper_2cluster(5);
    let rhop = RhopConfig::default();

    let points = match exhaustive_search(&w.program, &w.profile, &machine, &rhop, 12) {
        Ok(points) => points,
        Err(e) => {
            eprintln!("{name}: {e}");
            std::process::exit(1);
        }
    };
    let worst = points.iter().map(|p| p.cycles).max().unwrap() as f64;
    let best = points.iter().map(|p| p.cycles).min().unwrap() as f64;
    println!("== {name}: {} object mappings enumerated", points.len());
    println!("   best mapping is {:.1}% faster than the worst", (worst / best - 1.0) * 100.0);

    // Crude ASCII scatter: performance (x) vs balance (y).
    const COLS: usize = 64;
    const ROWS: usize = 12;
    let mut grid = vec![vec![' '; COLS + 1]; ROWS + 1];
    for p in &points {
        let x = ((worst / p.cycles as f64 - 1.0) / (worst / best - 1.0).max(1e-9) * COLS as f64)
            .round() as usize;
        let y = ((p.imbalance - 0.5) / 0.5 * ROWS as f64).round() as usize;
        grid[y.min(ROWS)][x.min(COLS)] = match grid[y.min(ROWS)][x.min(COLS)] {
            ' ' => '.',
            '.' => 'o',
            _ => '@',
        };
    }
    println!(
        "   y = size imbalance (bottom balanced, top skewed); x = performance (right is faster)"
    );
    for row in grid.iter().rev() {
        let line: String = row.iter().collect();
        println!("   |{line}");
    }
    println!("   +{}", "-".repeat(COLS + 1));

    // Where does GDP land?
    let program = w.profile.apply_heap_sizes(&w.program);
    let pts = PointsTo::compute(&program);
    let access = AccessInfo::compute(&program, &pts, &w.profile);
    let groups = ObjectGroups::compute(&program, &access);
    let dp = gdp_partition(&program, &w.profile, &access, &groups, &machine, &GdpConfig::default())
        .expect("gdp");
    let gdp_point =
        evaluate_mapping(&program, &w.profile, &machine, &groups, &dp.group_cluster, &rhop)
            .expect("rhop");
    println!(
        "   GDP chose a mapping at {:.1}% of best performance with imbalance {:.2}",
        best / gdp_point.cycles as f64 * 100.0,
        gdp_point.imbalance
    );
}
