//! Walk through the full Global Data Partitioning pipeline on the
//! `rawcaudio` (ADPCM encoder) benchmark, dumping each intermediate
//! artifact: points-to sets, access-pattern object groups, the data
//! partition, the RHOP computation partition, and the final schedule.
//!
//! Run with `cargo run --example adpcm_partitioning`.

use mcpart::analysis::{AccessInfo, PointsTo};
use mcpart::core::{gdp_partition, rhop_partition, GdpConfig, ObjectGroups, RhopConfig};
use mcpart::machine::Machine;
use mcpart::sched::{evaluate, insert_moves, normalize_placement};

fn main() {
    let w = mcpart::workloads::by_name("rawcaudio").expect("rawcaudio is a known benchmark");
    let program = w.profile.apply_heap_sizes(&w.program);
    let machine = Machine::paper_2cluster(5);

    println!("== benchmark: {} ({} ops)", w.name, program.num_ops());
    println!("-- data objects:");
    for (id, obj) in program.objects.iter() {
        println!("   {id}: {obj}");
    }

    // §3.2: prepartitioning analyses.
    let pts = PointsTo::compute(&program);
    let access = AccessInfo::compute(&program, &pts, &w.profile);
    println!("-- {} memory access sites analyzed", access.sites().len());

    // §3.3.1: access-pattern merging.
    let groups = ObjectGroups::compute(&program, &access);
    println!("-- object groups after access-pattern merging:");
    for (g, members) in groups.groups.iter().enumerate() {
        let names: Vec<&str> = members.iter().map(|&o| program.objects[o].name.as_str()).collect();
        println!(
            "   group {g}: {:?} ({} bytes, {} dynamic accesses)",
            names, groups.group_size[g], groups.group_freq[g]
        );
    }

    // §3.3.2: the data partition.
    let dp = gdp_partition(&program, &w.profile, &access, &groups, &machine, &GdpConfig::default())
        .expect("gdp");
    println!("-- GDP data partition (cut = {}):", dp.cut);
    for (obj, home) in dp.object_home.iter() {
        if let Some(c) = home {
            println!("   {} -> cluster {}", program.objects[obj].name, c.index());
        }
    }
    println!("   bytes per cluster: {:?}", dp.bytes_per_cluster(&program, 2));

    // §3.4: RHOP with locked memory operations.
    let (placement, stats) = rhop_partition(
        &program,
        &access,
        &w.profile,
        &machine,
        &dp.object_home,
        &RhopConfig::default(),
    )
    .expect("rhop");
    println!(
        "-- RHOP: {} regions, {} estimator calls, {} moves accepted",
        stats.regions, stats.estimator_calls, stats.moves_accepted
    );
    println!("   operations per cluster: {:?}", placement.ops_per_cluster(2));

    // Finalize: normalization, intercluster moves, scheduling.
    let normalized = normalize_placement(&program, &placement, &access, &machine, &w.profile);
    let (moved, moved_placement, move_stats) = insert_moves(&program, &normalized, &machine);
    println!("-- {} intercluster moves inserted", move_stats.moves_inserted);

    let moved_pts = PointsTo::compute(&moved);
    let moved_access = AccessInfo::compute(&moved, &moved_pts, &w.profile);
    let report = evaluate(&moved, &moved_placement, &machine, &w.profile, &moved_access);
    println!(
        "-- final: {} cycles, {} dynamic intercluster moves",
        report.total_cycles, report.dynamic_moves
    );

    // Sanity: the transformed program still computes the same result.
    let equivalent = mcpart::sim::semantically_equivalent(
        &program,
        &moved,
        &[],
        mcpart::sim::ExecConfig::default(),
    )
    .expect("both variants execute");
    println!("-- semantics preserved: {equivalent}");
    assert!(equivalent);
}
