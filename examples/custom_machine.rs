//! Explore non-default machines: 4 clusters, asymmetric memory
//! capacities, and different intercluster latencies/bandwidths.
//!
//! Run with `cargo run --example custom_machine`.

use mcpart::core::{run_pipeline, Method, PipelineConfig};
use mcpart::machine::{Cluster, FuMix, Interconnect, LatencyTable, Machine, MemoryModel};

fn main() {
    let w = mcpart::workloads::by_name("fft").expect("fft is a known benchmark");

    // 1. The paper's machine at the three evaluated latencies.
    for latency in [1u32, 5, 10] {
        let machine = Machine::paper_2cluster(latency);
        let gdp = run_pipeline(&w.program, &w.profile, &machine, &PipelineConfig::new(Method::Gdp))
            .expect("pipeline");
        let uni =
            run_pipeline(&w.program, &w.profile, &machine, &PipelineConfig::new(Method::Unified))
                .expect("pipeline");
        println!(
            "2 clusters, {latency:>2}-cycle moves: GDP {:>8} cycles ({:.1}% of unified)",
            gdp.cycles(),
            uni.cycles() as f64 / gdp.cycles() as f64 * 100.0
        );
    }

    // 2. Scaling to 4 clusters.
    let machine4 = Machine::homogeneous(4, 5);
    let gdp4 = run_pipeline(&w.program, &w.profile, &machine4, &PipelineConfig::new(Method::Gdp))
        .expect("pipeline");
    println!(
        "4 clusters, 5-cycle moves: GDP {:>8} cycles, data bytes {:?}",
        gdp4.cycles(),
        gdp4.data_bytes
    );

    // 3. A hand-built asymmetric machine: a beefy cluster with a large
    //    memory plus a lean helper cluster, double-bandwidth bus.
    let custom = Machine {
        clusters: vec![
            Cluster::new("big", FuMix::new(4, 2, 2, 1)).with_memory_weight(3),
            Cluster::new("lean", FuMix::new(2, 0, 1, 1)).with_memory_weight(1),
        ],
        interconnect: Interconnect::bus(3).with_bandwidth(2),
        memory: MemoryModel::Partitioned,
        latency: LatencyTable::itanium_like(),
    };
    let gdp_custom =
        run_pipeline(&w.program, &w.profile, &custom, &PipelineConfig::new(Method::Gdp))
            .expect("pipeline");
    println!(
        "asymmetric machine: GDP {:>8} cycles, data bytes {:?} (3:1 capacity target)",
        gdp_custom.cycles(),
        gdp_custom.data_bytes
    );
    let total: u64 = gdp_custom.data_bytes.iter().sum();
    assert!(
        gdp_custom.data_bytes[0] > total / 2,
        "the big cluster should hold the majority of the data"
    );
}
