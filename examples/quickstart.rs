//! Quickstart: build a small program, partition its data and
//! computation with GDP, and compare against the unified-memory upper
//! bound.
//!
//! Run with `cargo run --example quickstart`.

use mcpart::core::{run_pipeline, Method, PipelineConfig};
use mcpart::ir::{DataObject, FunctionBuilder, MemWidth, Profile, Program};
use mcpart::machine::Machine;

fn main() {
    // A toy image-processing kernel: two lookup tables drive two mostly
    // independent computation streams whose results combine at the end.
    let mut program = Program::new("quickstart");
    let gamma = program.add_object(DataObject::global("gammaTable", 256));
    let dither = program.add_object(DataObject::global("ditherTable", 256));
    let result = program.add_object(DataObject::global("result", 8));

    let mut b = FunctionBuilder::entry(&mut program);
    let g_base = b.addrof(gamma);
    let d_base = b.addrof(dither);
    let mut g_acc = b.iconst(0);
    let mut d_acc = b.iconst(0);
    for i in 0..8 {
        let off = b.iconst(i * 4);
        let ga = b.add(g_base, off);
        let gv = b.load(MemWidth::B4, ga);
        g_acc = b.add(g_acc, gv);
        let off2 = b.iconst(i * 4);
        let da = b.add(d_base, off2);
        let dv = b.load(MemWidth::B4, da);
        d_acc = b.add(d_acc, dv);
    }
    let combined = b.add(g_acc, d_acc);
    let r_base = b.addrof(result);
    b.store(MemWidth::B4, r_base, combined);
    b.ret(Some(combined));

    mcpart::ir::verify_program(&program).expect("well-formed program");
    let profile = Profile::uniform(&program, 1000);

    // The paper's machine: 2 clusters, 2 int / 1 float / 1 mem / 1
    // branch unit each, 5-cycle intercluster moves, partitioned data
    // memories.
    let machine = Machine::paper_2cluster(5);

    println!(
        "== quickstart: {} operations, {} data objects",
        program.num_ops(),
        program.objects.len()
    );
    let mut unified_cycles = 0u64;
    for method in Method::ALL {
        let run = run_pipeline(&program, &profile, &machine, &PipelineConfig::new(method))
            .expect("pipeline");
        if method == Method::Unified {
            unified_cycles = run.cycles();
        }
        println!(
            "{method:>12}: {:>8} cycles, {:>6} dynamic intercluster moves, data bytes per cluster {:?}",
            run.cycles(),
            run.dynamic_moves(),
            run.data_bytes,
        );
    }
    let gdp = run_pipeline(&program, &profile, &machine, &PipelineConfig::new(Method::Gdp))
        .expect("pipeline");
    println!(
        "GDP achieves {:.1}% of unified-memory performance",
        unified_cycles as f64 / gdp.cycles() as f64 * 100.0
    );
}
