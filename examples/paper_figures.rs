//! Reconstructs the paper's running examples in code:
//!
//! * **Figure 4** — a pointer (`foo`) that may target either heap data
//!   (`x`) or a global (`value1`), forcing the two objects into one
//!   placement group via access-pattern merging;
//! * **Figures 5/6** — data partitioning balancing object bytes while
//!   the second-pass computation partitioner improves the operation
//!   split around the locked memory accesses.
//!
//! Run with `cargo run --example paper_figures`.

use mcpart::analysis::{AccessInfo, PointsTo};
use mcpart::core::{gdp_partition, rhop_partition, GdpConfig, ObjectGroups, RhopConfig};
use mcpart::ir::{Cmp, DataObject, FunctionBuilder, MemWidth, Profile, Program};
use mcpart::machine::Machine;

fn figure4() {
    println!("== Figure 4: access-pattern merging through an ambiguous pointer");
    let mut p = Program::new("figure4");
    let x_site = p.add_object(DataObject::heap_site("x"));
    let value1 = p.add_object(DataObject::global("value1", 4));
    let value2 = p.add_object(DataObject::global("value2", 4));

    let mut b = FunctionBuilder::entry(&mut p);
    let cond = b.param();
    // BB1: x = malloc(...); y = &value1
    let forty = b.iconst(40);
    let x = b.malloc(x_site, forty);
    let y = b.addrof(value1);
    #[allow(clippy::disallowed_names)] // `foo` is the paper's own variable name
    let foo = b.mov(x); // foo = x on one path
    let bb3 = b.block("bb3");
    let bb4 = b.block("bb4");
    let zero = b.iconst(0);
    let c = b.icmp(Cmp::Ne, cond, zero);
    b.branch(c, bb3, bb4);
    // BB3: *y updated; foo = y
    b.switch_to(bb3);
    let v = b.load(MemWidth::B4, y);
    let one = b.iconst(1);
    let v1 = b.add(v, one);
    b.store(MemWidth::B4, y, v1);
    b.mov_to(foo, y);
    b.jump(bb4);
    // BB4: load through foo — may reach x or value1; value2 is separate.
    b.switch_to(bb4);
    let loaded = b.load(MemWidth::B4, foo);
    let v2a = b.addrof(value2);
    b.store(MemWidth::B4, v2a, loaded);
    b.ret(Some(loaded));

    let profile = Profile::uniform(&p, 10);
    let pts = PointsTo::compute(&p);
    let access = AccessInfo::compute(&p, &pts, &profile);
    let groups = ObjectGroups::compute(&p, &access);
    println!("   objects: x (heap), value1, value2");
    println!("   -> {} groups after merging (x and value1 must share a memory):", groups.len());
    for (g, members) in groups.groups.iter().enumerate() {
        let names: Vec<&str> = members.iter().map(|&o| p.objects[o].name.as_str()).collect();
        println!("      group {g}: {names:?}");
    }
    assert_eq!(groups.group_of[x_site], groups.group_of[value1]);
    assert_ne!(groups.group_of[x_site], groups.group_of[value2]);
}

fn figures5_and_6() {
    println!("== Figures 5/6: data partitioning + computation partitioning");
    // Two memory-heavy pipelines (A, C) and a shared reduction, sized so
    // the balanced split is nontrivial (Figure 5 balances 216 vs 240
    // bytes; we use two 128-byte tables and one 96-byte table).
    let mut p = Program::new("figure5");
    let ta = p.add_object(DataObject::global("A", 128));
    let tb = p.add_object(DataObject::global("B", 96));
    let tc = p.add_object(DataObject::global("C", 128));
    let mut b = FunctionBuilder::entry(&mut p);
    let mut partials = Vec::new();
    for obj in [ta, tb, tc] {
        let base = b.addrof(obj);
        let mut acc = b.iconst(0);
        for i in 0..4 {
            let off = b.iconst(i * 4);
            let addr = b.add(base, off);
            let v = b.load(MemWidth::B4, addr);
            let w = b.mul(v, v);
            acc = b.add(acc, w);
        }
        partials.push(acc);
    }
    let s1 = b.add(partials[0], partials[1]);
    let s2 = b.add(s1, partials[2]);
    let out = b.addrof(ta);
    b.store(MemWidth::B4, out, s2);
    b.ret(Some(s2));

    let profile = Profile::uniform(&p, 100);
    let pts = PointsTo::compute(&p);
    let access = AccessInfo::compute(&p, &pts, &profile);
    let groups = ObjectGroups::compute(&p, &access);
    let machine = Machine::paper_2cluster(5);
    let dp = gdp_partition(&p, &profile, &access, &groups, &machine, &GdpConfig::default())
        .expect("gdp");
    let bytes = dp.bytes_per_cluster(&p, 2);
    println!("   first pass: data bytes per cluster = {bytes:?} (total 352)");
    assert!(bytes[0] > 0 && bytes[1] > 0, "both memories used");

    let (placement, stats) =
        rhop_partition(&p, &access, &profile, &machine, &dp.object_home, &RhopConfig::default())
            .expect("rhop");
    let ops = placement.ops_per_cluster(2);
    println!(
        "   second pass: {} estimator calls moved {} groups; ops per cluster = {ops:?}",
        stats.estimator_calls, stats.moves_accepted
    );
    // Figure 6's point: memory ops are locked, the rest moves freely for
    // the schedule. Verify every memory op sits on its object's home.
    for (oid, op) in p.entry_function().ops.iter() {
        if op.opcode.is_memory() {
            let site = mcpart::analysis::AccessSite { func: p.entry, op: oid };
            let obj = *access.site_objects[&site].iter().next().expect("one object");
            assert_eq!(
                Some(placement.cluster_of(p.entry, oid)),
                dp.object_home[obj],
                "memory op follows its object"
            );
        }
    }
    println!("   every memory operation is locked to its object's home cluster ✓");
}

fn main() {
    figure4();
    figures5_and_6();
}
