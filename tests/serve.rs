//! Acceptance tests for `mcpart serve`: the resilient partition
//! service. Each test drives the real binary over a private spool
//! directory and asserts on the on-disk artifacts, because the
//! service's contract *is* its file-system protocol.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A fresh private spool directory for one test.
fn spool(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcpart_serve_test_{test}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create spool");
    dir
}

/// Drops a job file into the spool.
fn submit(dir: &Path, name: &str, body: &str) {
    fs::write(dir.join(format!("{name}.job")), body).expect("write job");
}

fn job(program: &str) -> String {
    format!("{{\"mcpart_job\":1,\"program\":\"{program}\"}}")
}

/// Runs `mcpart serve <dir> <args...>` to completion.
fn serve(dir: &Path, args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_mcpart"))
        .arg("serve")
        .arg(dir)
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

fn result_of(dir: &Path, name: &str) -> String {
    fs::read_to_string(dir.join("out").join(format!("{name}.json")))
        .unwrap_or_else(|e| panic!("missing result for {name}: {e}"))
}

fn cache_entries(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = fs::read_dir(dir.join("cache"))
        .expect("cache dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
        .collect();
    v.sort();
    v
}

/// Acceptance (a): resubmitting an identical job is a verified cache
/// hit with byte-identical output.
#[test]
fn resubmission_is_a_verified_cache_hit_with_byte_identical_output() {
    let dir = spool("cache_hit");
    submit(&dir, "fir", &job("fir"));
    let (stdout, stderr, code) = serve(&dir, &["--drain"]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("job fir: ok (computed)"), "{stdout}");
    let first = result_of(&dir, "fir");
    assert_eq!(cache_entries(&dir).len(), 1, "one artifact cached");

    submit(&dir, "fir", &job("fir"));
    let (stdout, stderr, code) = serve(&dir, &["--drain"]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("job fir: ok (cache hit)"), "{stdout}");
    assert!(stdout.contains("cache_hits=1"), "{stdout}");
    let second = result_of(&dir, "fir");
    assert_eq!(first, second, "cache hit must rewrite byte-identical output");
}

/// Acceptance (b): a corrupted cache entry is detected, evicted, and
/// recomputed — never served. The full corruption corpus (truncation
/// sweep, bit flips, headerless files) lives in `tests/pipeline_fuzz.rs`.
#[test]
fn corrupted_cache_entry_is_evicted_and_recomputed() {
    let dir = spool("cache_evict");
    submit(&dir, "fir", &job("fir"));
    let (_, _, code) = serve(&dir, &["--drain"]);
    assert_eq!(code, Some(0));
    let baseline = result_of(&dir, "fir");
    let entry = cache_entries(&dir).pop().expect("entry exists");
    let pristine = fs::read(&entry).expect("read entry");

    // Flip one bit in the middle of the record line.
    let mut bytes = pristine.clone();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    fs::write(&entry, &bytes).expect("corrupt entry");

    submit(&dir, "fir", &job("fir"));
    let (stdout, stderr, code) = serve(&dir, &["--drain"]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("cache entry evicted"), "corruption not detected: {stdout}");
    assert!(stdout.contains("cache_evictions=1"), "{stdout}");
    assert!(!stdout.contains("cache hit"), "served a corrupt entry: {stdout}");
    assert_eq!(result_of(&dir, "fir"), baseline, "recompute must be byte-identical");

    // The healed entry verifies again (entries carry one non-pinned
    // wall-clock field, so byte-equality with the original is not
    // expected): the next submission is a verified hit.
    let healed = fs::read(cache_entries(&dir).pop().expect("rewritten")).expect("read");
    assert_ne!(healed, bytes, "corrupt bytes were left in place");
    submit(&dir, "fir", &job("fir"));
    let (stdout, _, code) = serve(&dir, &["--drain"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("cache hit"), "{stdout}");
}

/// Acceptance (c): a crash mid-batch (the `--halt-after` hook aborts
/// the process with one output half-written and claimed jobs still in
/// `work/` — the state kill -9 leaves) followed by a restart drains
/// all spooled jobs with outputs byte-identical to an uninterrupted
/// run.
#[test]
fn crash_mid_batch_then_restart_drains_byte_identical_outputs() {
    let programs = ["fir", "latnrm", "rawcaudio"];

    let clean = spool("crash_clean");
    for p in &programs {
        submit(&clean, p, &job(p));
    }
    let (_, stderr, code) = serve(&clean, &["--drain"]);
    assert_eq!(code, Some(0), "stderr: {stderr}");

    let crashed = spool("crash_killed");
    for p in &programs {
        submit(&crashed, p, &job(p));
    }
    let (stdout, _, code) = serve(&crashed, &["--drain", "--halt-after", "1"]);
    assert_ne!(code, Some(0), "the halted run must die: {stdout}");
    // The crash left tolerated artifacts only: claimed jobs and a
    // half-written output.
    let work: Vec<_> = fs::read_dir(crashed.join("work")).expect("work dir").collect();
    assert!(!work.is_empty(), "no in-flight jobs left behind — halt landed too late");

    let (stdout, stderr, code) = serve(&crashed, &["--drain"]);
    assert_eq!(code, Some(0), "restart failed: {stderr}");
    assert!(stdout.contains("recovery: requeued"), "{stdout}");
    assert!(stdout.contains("cache hit"), "interrupted job should re-land as a hit: {stdout}");
    for p in &programs {
        assert_eq!(
            result_of(&crashed, p),
            result_of(&clean, p),
            "{p}: post-crash output differs from the uninterrupted run"
        );
    }
    // No stray temporary artifacts survive recovery.
    for sub in ["out", "cache"] {
        for e in fs::read_dir(crashed.join(sub)).expect("dir") {
            let p = e.expect("entry").path();
            assert_ne!(p.extension().and_then(|e| e.to_str()), Some("tmp"), "stray {p:?}");
        }
    }
}

/// Acceptance (d): a poison job exits the queue via quarantine (job
/// file moved to `failed/` with a diagnostic) while subsequent jobs
/// still complete.
#[test]
fn poison_job_quarantines_while_the_queue_continues() {
    let dir = spool("poison");
    submit(&dir, "a_poison", r#"{"mcpart_job":1,"program":"fir","inject_panic":"main"}"#);
    submit(&dir, "b_good", &job("latnrm"));
    let (stdout, stderr, code) = serve(&dir, &["--drain"]);
    assert_eq!(code, Some(0), "a poison job must not take the service down: {stderr}");
    assert!(stdout.contains("job a_poison: quarantined"), "{stdout}");
    assert!(stdout.contains("job b_good: ok"), "queue wedged behind the poison job: {stdout}");
    assert!(stdout.contains("quarantined=1"), "{stdout}");

    assert!(dir.join("failed").join("a_poison.job").exists(), "job not quarantined to failed/");
    let reason =
        fs::read_to_string(dir.join("failed").join("a_poison.reason")).expect("diagnostic");
    assert!(reason.contains("injected fault"), "diagnostic missing the cause: {reason}");
    let result = result_of(&dir, "a_poison");
    assert!(result.contains("\"status\":\"quarantined\",\"exit\":1"), "{result}");
    // The poisoned result is never cached: resubmission recomputes.
    submit(&dir, "a_poison", r#"{"mcpart_job":1,"program":"fir","inject_panic":"main"}"#);
    let (stdout, _, code) = serve(&dir, &["--drain"]);
    assert_eq!(code, Some(0));
    assert!(!stdout.contains("cache hit"), "served a quarantined result from cache: {stdout}");
}

/// Acceptance (satellite): a job that takes the process down before it
/// can ever commit (here via the `--halt-after 0` crash hook) is
/// requeued by startup recovery only `--max-requeues` times; the next
/// startup quarantines it to `failed/` as poison, counts it in the
/// summary, and the queue flows on.
#[test]
fn crash_looping_job_is_quarantined_after_the_requeue_budget() {
    let dir = spool("requeue_cap");
    submit(&dir, "p", &job("fir"));
    // Three crash-loops in a row: claim, die mid-commit, restart.
    // The budget of 2 is spent by the second and third startups.
    for round in 0..3 {
        let (stdout, _, code) =
            serve(&dir, &["--drain", "--halt-after", "0", "--max-requeues", "2"]);
        assert_ne!(code, Some(0), "round {round}: the halted run must die: {stdout}");
    }
    assert!(
        fs::read_to_string(dir.join("p.requeues")).expect("sidecar").trim() == "2",
        "sidecar must carry the requeue tally"
    );
    // The fourth startup refuses to requeue the job again.
    let (stdout, stderr, code) = serve(&dir, &["--drain", "--max-requeues", "2"]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("quarantined 1 poison job(s)"), "{stdout}");
    assert!(stdout.contains("poisoned=1"), "{stdout}");
    assert!(dir.join("failed").join("p.job").exists(), "poison job not in failed/");
    let reason = fs::read_to_string(dir.join("failed").join("p.reason")).expect("diagnostic");
    assert!(reason.contains("poisoned: requeued 2 time(s)"), "{reason}");
    assert!(!dir.join("p.requeues").exists(), "sidecar must not outlive the job");

    // A job that survives a crash and then commits sheds its tally:
    // the budget only counts *consecutive* failures to commit.
    submit(&dir, "q", &job("latnrm"));
    let (_, _, code) = serve(&dir, &["--drain", "--halt-after", "0", "--max-requeues", "2"]);
    assert_ne!(code, Some(0), "the halted run must die");
    let (stdout, _, code) = serve(&dir, &["--drain", "--max-requeues", "2"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("job q: ok"), "{stdout}");
    assert!(!dir.join("q.requeues").exists(), "tally must reset once the job commits");
}

/// Overload sheds deterministically: a bounded admission queue, and
/// everything past the bound gets a typed `overloaded` result file —
/// never a silent drop. Lexicographic order decides who is admitted.
#[test]
fn overload_sheds_deterministically_with_typed_results() {
    let dir = spool("overload");
    for name in ["j1", "j2", "j3"] {
        submit(&dir, name, &job("fir"));
    }
    let (stdout, stderr, code) = serve(&dir, &["--drain", "--queue", "1"]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("rejected=2"), "{stdout}");
    // Deterministic: the lexicographically-first job is admitted.
    assert!(result_of(&dir, "j1").contains("\"status\":\"ok\""));
    for shed in ["j2", "j3"] {
        let r = result_of(&dir, shed);
        assert!(r.contains("\"status\":\"overloaded\",\"exit\":1"), "{shed}: {r}");
        assert!(r.contains("admission queue full"), "{shed}: {r}");
    }
}

/// Unparseable job files and unknown programs become typed `invalid`
/// results (exit vocabulary 2) in `failed/`, not service failures.
#[test]
fn invalid_jobs_fail_typed_without_wedging_the_service() {
    let dir = spool("invalid");
    submit(&dir, "bad", "this is not json");
    submit(&dir, "unknown", &job("no-such-benchmark"));
    submit(&dir, "good", &job("fir"));
    let (stdout, stderr, code) = serve(&dir, &["--drain"]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("job good: ok"), "{stdout}");
    for bad in ["bad", "unknown"] {
        let r = result_of(&dir, bad);
        assert!(r.contains("\"status\":\"invalid\",\"exit\":2"), "{bad}: {r}");
        assert!(dir.join("failed").join(format!("{bad}.job")).exists());
    }
}

/// The `serve/*` counters are always present on a serve trace, so
/// they are part of the `trace-check --require` vocabulary.
#[test]
fn serve_counters_survive_trace_check_require() {
    let dir = spool("counters");
    submit(&dir, "fir", &job("fir"));
    let trace = dir.join("trace.json");
    let trace_str = trace.to_str().expect("utf8 path");
    let (stdout, stderr, code) = serve(&dir, &["--drain", "--metrics", "--trace-out", trace_str]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("observability summary"), "{stdout}");
    assert!(stdout.contains("serve/admitted"), "{stdout}");
    let out = Command::new(env!("CARGO_BIN_EXE_mcpart"))
        .args([
            "trace-check",
            trace_str,
            "--require",
            "serve/admitted,serve/rejected,serve/cache_hits,serve/cache_evictions,\
             serve/quarantined",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

/// The flight recorder appends one checksummed snapshot per committed
/// job (default `--telemetry-every 1`) plus a final one, publishes a
/// `latest.json` mirror, and `mcpart stats <spool>` renders percentile
/// tables and summed counters from the directory.
#[test]
fn flight_recorder_snapshots_render_through_stats() {
    let dir = spool("telemetry");
    for p in ["fir", "latnrm"] {
        submit(&dir, p, &job(p));
    }
    let (_, stderr, code) = serve(&dir, &["--drain"]);
    assert_eq!(code, Some(0), "stderr: {stderr}");

    let tdir = dir.join("telemetry");
    assert!(tdir.join("telemetry.jsonl").is_file(), "no flight-recorder log");
    assert!(tdir.join("latest.json").is_file(), "no latest.json mirror");
    let log = fs::read_to_string(tdir.join("telemetry.jsonl")).expect("log reads");
    assert!(log.lines().count() >= 2, "expected one snapshot per job:\n{log}");
    for line in log.lines() {
        assert!(line.contains("\"mcpart_telemetry\":1"), "unframed record: {line}");
        assert!(line.contains("\"sum\":\""), "unchecksummed record: {line}");
    }

    // stats accepts the spool root, the telemetry dir, and the log file.
    for target in [dir.clone(), tdir.clone(), tdir.join("telemetry.jsonl")] {
        let out = Command::new(env!("CARGO_BIN_EXE_mcpart"))
            .args(["stats", target.to_str().expect("utf8")])
            .output()
            .expect("binary runs");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(out.status.success(), "stats {target:?}: {}", String::from_utf8_lossy(&out.stderr));
        for needle in ["telemetry:", "completed", "serve/job", "p99", "gdp/cut"] {
            assert!(stdout.contains(needle), "stats {target:?} missing {needle}:\n{stdout}");
        }
    }

    // --telemetry-every 0 disables the recorder entirely.
    let off = spool("telemetry_off");
    submit(&off, "fir", &job("fir"));
    let (_, _, code) = serve(&off, &["--drain", "--telemetry-every", "0"]);
    assert_eq!(code, Some(0));
    assert!(!off.join("telemetry").exists(), "recorder ran despite --telemetry-every 0");
}

/// Killing the service mid-append must not poison the telemetry log:
/// the corrupt tail is skipped with a warning, the valid prefix still
/// renders, and a restart opens a fresh run whose snapshots land after
/// the damage.
#[test]
fn telemetry_survives_kill_mid_append_and_restart() {
    let dir = spool("telemetry_crash");
    for p in ["fir", "latnrm", "rawcaudio"] {
        submit(&dir, p, &job(p));
    }
    let (_, _, code) = serve(&dir, &["--drain", "--halt-after", "1"]);
    assert_ne!(code, Some(0), "the halted run must die");

    // Simulate the worst tail: a record cut mid-write.
    let log_path = dir.join("telemetry").join("telemetry.jsonl");
    let mut log = fs::read_to_string(&log_path).expect("log exists after the crash");
    log.push_str("{\"mcpart_telemetry\":1,\"run\":1,\"seq\":9,\"counters\":{\"adm");
    fs::write(&log_path, &log).expect("write torn tail");

    let (_, stderr, code) = serve(&dir, &["--drain"]);
    assert_eq!(code, Some(0), "restart failed: {stderr}");

    let out = Command::new(env!("CARGO_BIN_EXE_mcpart"))
        .args(["stats", dir.to_str().expect("utf8")])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stats failed: {stderr}");
    assert!(stderr.contains("skipped 1 corrupt telemetry record"), "{stderr}");
    assert!(stdout.contains("2 run(s)"), "restart must open a new run:\n{stdout}");
    // All three jobs are accounted for across the two runs.
    assert!(stdout.contains("completed"), "{stdout}");
}

/// SIGTERM drains and exits 0 (crash-only shutdown), leaving any
/// unclaimed jobs spooled for the next run.
#[cfg(unix)]
#[test]
fn sigterm_drains_in_flight_work_and_exits_zero() {
    let dir = spool("sigterm");
    let mut child = Command::new(env!("CARGO_BIN_EXE_mcpart"))
        .arg("serve")
        .arg(&dir)
        .args(["--poll-ms", "50"])
        .spawn()
        .expect("daemon starts");
    // Let the daemon reach its idle poll, then ask it to stop.
    std::thread::sleep(std::time::Duration::from_millis(400));
    let term =
        Command::new("kill").args(["-TERM", &child.id().to_string()]).status().expect("kill runs");
    assert!(term.success(), "could not signal the daemon");
    let status = child.wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0), "SIGTERM must drain and exit 0");
}
