//! Print → parse → print round-trips for every workload, with semantic
//! equivalence of the reparsed program.

use mcpart::ir::{parse_program, program_to_string, verify_program};
use mcpart::sim::{run, ExecConfig};

#[test]
fn all_workloads_roundtrip_through_text() {
    for w in mcpart::workloads::all() {
        let text = program_to_string(&w.program);
        let parsed =
            parse_program(&text).unwrap_or_else(|e| panic!("{}: parse failed: {e}", w.name));
        verify_program(&parsed).unwrap_or_else(|e| panic!("{}: reparse invalid: {e}", w.name));
        let text2 = program_to_string(&parsed);
        assert_eq!(text, text2, "{}: textual form not stable", w.name);
        // The reparsed program behaves identically.
        let a = run(&w.program, &[], ExecConfig::default()).unwrap();
        let b = run(&parsed, &[], ExecConfig::default()).unwrap();
        assert_eq!(a.return_value, b.return_value, "{}", w.name);
        assert_eq!(a.memory, b.memory, "{}", w.name);
        assert_eq!(a.steps, b.steps, "{}", w.name);
    }
}

#[test]
fn moved_programs_roundtrip_through_text() {
    // The text format must also carry post-transformation programs
    // (with inserted moves).
    use mcpart::core::{run_pipeline, Method, PipelineConfig};
    use mcpart::machine::Machine;
    let w = mcpart::workloads::by_name("rawcaudio").unwrap();
    let machine = Machine::paper_2cluster(5);
    let result = run_pipeline(&w.program, &w.profile, &machine, &PipelineConfig::new(Method::Gdp))
        .expect("pipeline");
    let text = program_to_string(&result.program);
    let parsed = parse_program(&text).unwrap();
    assert_eq!(text, program_to_string(&parsed));
}

#[test]
fn optimizer_preserves_semantics_on_all_workloads() {
    for w in mcpart::workloads::all() {
        let mut optimized = w.profile.apply_heap_sizes(&w.program);
        let stats = mcpart::ir::optimize(&mut optimized);
        verify_program(&optimized)
            .unwrap_or_else(|e| panic!("{}: optimized program invalid: {e}", w.name));
        assert!(
            optimized.num_ops() < w.program.num_ops(),
            "{}: optimizer should shrink generator output ({stats:?})",
            w.name
        );
        let a = run(&w.program, &[], ExecConfig::default()).unwrap();
        let b = run(&optimized, &[], ExecConfig::default()).unwrap();
        assert_eq!(a.return_value, b.return_value, "{}", w.name);
        assert_eq!(a.memory, b.memory, "{}", w.name);
    }
}
