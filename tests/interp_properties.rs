//! Property-based tests of the functional interpreter: random
//! straight-line programs over a scratch object, determinism, and
//! profile consistency.

use mcpart::ir::{
    Cmp, DataObject, FunctionBuilder, IntBinOp, MemWidth, Program, VReg,
};
use mcpart::sim::{run, ExecConfig};
use proptest::prelude::*;

/// A tiny op-plan language for random program generation.
#[derive(Clone, Debug)]
enum PlanOp {
    Const(i64),
    Bin(u8, usize, usize),
    Cmp(u8, usize, usize),
    Select(usize, usize, usize),
    Store(usize, u8),
    Load(u8),
}

fn arb_plan() -> impl Strategy<Value = Vec<PlanOp>> {
    prop::collection::vec(
        prop_oneof![
            (-1000i64..1000).prop_map(PlanOp::Const),
            (0u8..9, 0usize..64, 0usize..64).prop_map(|(k, a, b)| PlanOp::Bin(k, a, b)),
            (0u8..6, 0usize..64, 0usize..64).prop_map(|(k, a, b)| PlanOp::Cmp(k, a, b)),
            (0usize..64, 0usize..64, 0usize..64).prop_map(|(c, a, b)| PlanOp::Select(c, a, b)),
            (0usize..64, 0u8..14).prop_map(|(v, o)| PlanOp::Store(v, o)),
            (0u8..14).prop_map(PlanOp::Load),
        ],
        1..60,
    )
}

fn realize(plan: &[PlanOp]) -> Program {
    let mut p = Program::new("random");
    let scratch = p.add_object(DataObject::global("scratch", 64));
    let mut b = FunctionBuilder::entry(&mut p);
    let mut values: Vec<VReg> = vec![b.iconst(1)];
    let base = b.addrof(scratch);
    let pick = |values: &[VReg], i: usize| values[i % values.len()];
    for op in plan {
        let v = match *op {
            PlanOp::Const(c) => b.iconst(c),
            PlanOp::Bin(k, a, c) => {
                let kinds = [
                    IntBinOp::Add,
                    IntBinOp::Sub,
                    IntBinOp::Mul,
                    IntBinOp::And,
                    IntBinOp::Or,
                    IntBinOp::Xor,
                    IntBinOp::Shl,
                    IntBinOp::Min,
                    IntBinOp::Max,
                ];
                let (x, y) = (pick(&values, a), pick(&values, c));
                b.ibin(kinds[k as usize % kinds.len()], x, y)
            }
            PlanOp::Cmp(k, a, c) => {
                let kinds = [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge];
                let (x, y) = (pick(&values, a), pick(&values, c));
                b.icmp(kinds[k as usize % kinds.len()], x, y)
            }
            PlanOp::Select(c, x, y) => {
                let (cc, xx, yy) = (pick(&values, c), pick(&values, x), pick(&values, y));
                b.select(cc, xx, yy)
            }
            PlanOp::Store(v, off) => {
                let val = pick(&values, v);
                let o = b.iconst(off as i64 * 4);
                let addr = b.add(base, o);
                b.store(MemWidth::B4, addr, val);
                continue;
            }
            PlanOp::Load(off) => {
                let o = b.iconst(off as i64 * 4);
                let addr = b.add(base, o);
                b.load(MemWidth::B4, addr)
            }
        };
        values.push(v);
    }
    let last = *values.last().expect("nonempty");
    b.ret(Some(last));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random straight-line programs verify, execute without errors,
    /// and are deterministic.
    #[test]
    fn random_programs_execute_deterministically(plan in arb_plan()) {
        let p = realize(&plan);
        mcpart::ir::verify_program(&p).expect("generated programs verify");
        let a = run(&p, &[], ExecConfig::default()).expect("executes");
        let b = run(&p, &[], ExecConfig::default()).expect("executes");
        prop_assert_eq!(a.return_value, b.return_value);
        prop_assert_eq!(a.memory, b.memory);
        prop_assert_eq!(a.steps, b.steps);
        // Entry block runs exactly once.
        let entry = p.entry_function().entry;
        prop_assert_eq!(a.profile.block_freq(p.entry, entry), 1);
    }

    /// Random placements over random programs preserve semantics after
    /// move insertion (the cornerstone invariant of the whole system).
    #[test]
    fn random_program_random_placement_equivalence(
        plan in arb_plan(),
        clusters in prop::collection::vec(0u16..2, 1..200),
        homes in prop::collection::vec(0u16..2, 1..4),
    ) {
        let p = realize(&plan);
        let machine = mcpart::machine::Machine::paper_2cluster(5);
        let profile = mcpart::ir::Profile::uniform(&p, 1);
        let mut placement = mcpart::sched::Placement::all_on_cluster0(&p);
        for (fid, f) in p.functions.iter() {
            for (i, oid) in f.ops.keys().enumerate() {
                let c = clusters[i % clusters.len()] as usize;
                placement.set_cluster(fid, oid, mcpart::ir::ClusterId::new(c));
            }
        }
        for (i, home) in placement.object_home.values_mut().enumerate() {
            *home = Some(mcpart::ir::ClusterId::new(homes[i % homes.len()] as usize));
        }
        let pts = mcpart::analysis::PointsTo::compute(&p);
        let access = mcpart::analysis::AccessInfo::compute(&p, &pts, &profile);
        let normalized =
            mcpart::sched::normalize_placement(&p, &placement, &access, &machine, &profile);
        let (moved, _, _) = mcpart::sched::insert_moves(&p, &normalized, &machine);
        mcpart::ir::verify_program(&moved).expect("moved program verifies");
        prop_assert!(mcpart::sim::semantically_equivalent(
            &p,
            &moved,
            &[],
            ExecConfig::default()
        )
        .unwrap());
    }

    /// The scheduler produces legal schedules for random programs under
    /// random placements: dependences respected, lengths positive.
    #[test]
    fn random_program_schedules_are_legal(
        plan in arb_plan(),
        clusters in prop::collection::vec(0u16..2, 1..200),
    ) {
        let p = realize(&plan);
        let machine = mcpart::machine::Machine::paper_2cluster(5);
        let profile = mcpart::ir::Profile::uniform(&p, 1);
        let mut placement = mcpart::sched::Placement::all_on_cluster0(&p);
        for (fid, f) in p.functions.iter() {
            for (i, oid) in f.ops.keys().enumerate() {
                let c = clusters[i % clusters.len()] as usize;
                placement.set_cluster(fid, oid, mcpart::ir::ClusterId::new(c));
            }
        }
        let pts = mcpart::analysis::PointsTo::compute(&p);
        let access = mcpart::analysis::AccessInfo::compute(&p, &pts, &profile);
        let normalized =
            mcpart::sched::normalize_placement(&p, &placement, &access, &machine, &profile);
        let (moved, moved_placement, _) = mcpart::sched::insert_moves(&p, &normalized, &machine);
        let fid = moved.entry;
        let f = &moved.functions[fid];
        for (bid, block) in f.blocks.iter() {
            let s = mcpart::sched::schedule_block(
                &moved, fid, bid, &moved_placement, &machine, &access_of(&moved, &profile),
            );
            if !block.ops.is_empty() {
                prop_assert!(s.length >= 1);
            }
            // Dependence legality: every flow edge respected.
            prop_assert_eq!(s.ops.len(), block.ops.len());
        }
    }
}

fn access_of(p: &Program, profile: &mcpart::ir::Profile) -> mcpart::analysis::AccessInfo {
    let pts = mcpart::analysis::PointsTo::compute(p);
    mcpart::analysis::AccessInfo::compute(p, &pts, profile)
}
