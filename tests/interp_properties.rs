//! Property-based tests of the functional interpreter: random
//! straight-line programs over a scratch object, determinism, and
//! profile consistency. Driven by a deterministic seeded PRNG so every
//! run explores the same inputs.

use mcpart::ir::{Cmp, DataObject, FunctionBuilder, IntBinOp, MemWidth, Program, VReg};
use mcpart::rng::prelude::*;
use mcpart::sim::{run, ExecConfig};

/// A tiny op-plan language for random program generation.
#[derive(Clone, Debug)]
enum PlanOp {
    Const(i64),
    Bin(u8, usize, usize),
    Cmp(u8, usize, usize),
    Select(usize, usize, usize),
    Store(usize, u8),
    Load(u8),
}

fn gen_plan(rng: &mut SmallRng) -> Vec<PlanOp> {
    let n = rng.gen_range(1..60usize);
    (0..n)
        .map(|_| match rng.gen_range(0..6u32) {
            0 => PlanOp::Const(rng.gen_range(-1000i64..1000)),
            1 => PlanOp::Bin(
                rng.gen_range(0..9u32) as u8,
                rng.gen_range(0..64usize),
                rng.gen_range(0..64usize),
            ),
            2 => PlanOp::Cmp(
                rng.gen_range(0..6u32) as u8,
                rng.gen_range(0..64usize),
                rng.gen_range(0..64usize),
            ),
            3 => PlanOp::Select(
                rng.gen_range(0..64usize),
                rng.gen_range(0..64usize),
                rng.gen_range(0..64usize),
            ),
            4 => PlanOp::Store(rng.gen_range(0..64usize), rng.gen_range(0..14u32) as u8),
            _ => PlanOp::Load(rng.gen_range(0..14u32) as u8),
        })
        .collect()
}

fn realize(plan: &[PlanOp]) -> Program {
    let mut p = Program::new("random");
    let scratch = p.add_object(DataObject::global("scratch", 64));
    let mut b = FunctionBuilder::entry(&mut p);
    let mut values: Vec<VReg> = vec![b.iconst(1)];
    let base = b.addrof(scratch);
    let pick = |values: &[VReg], i: usize| values[i % values.len()];
    for op in plan {
        let v = match *op {
            PlanOp::Const(c) => b.iconst(c),
            PlanOp::Bin(k, a, c) => {
                let kinds = [
                    IntBinOp::Add,
                    IntBinOp::Sub,
                    IntBinOp::Mul,
                    IntBinOp::And,
                    IntBinOp::Or,
                    IntBinOp::Xor,
                    IntBinOp::Shl,
                    IntBinOp::Min,
                    IntBinOp::Max,
                ];
                let (x, y) = (pick(&values, a), pick(&values, c));
                b.ibin(kinds[k as usize % kinds.len()], x, y)
            }
            PlanOp::Cmp(k, a, c) => {
                let kinds = [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge];
                let (x, y) = (pick(&values, a), pick(&values, c));
                b.icmp(kinds[k as usize % kinds.len()], x, y)
            }
            PlanOp::Select(c, x, y) => {
                let (cc, xx, yy) = (pick(&values, c), pick(&values, x), pick(&values, y));
                b.select(cc, xx, yy)
            }
            PlanOp::Store(v, off) => {
                let val = pick(&values, v);
                let o = b.iconst(off as i64 * 4);
                let addr = b.add(base, o);
                b.store(MemWidth::B4, addr, val);
                continue;
            }
            PlanOp::Load(off) => {
                let o = b.iconst(off as i64 * 4);
                let addr = b.add(base, o);
                b.load(MemWidth::B4, addr)
            }
        };
        values.push(v);
    }
    let last = *values.last().expect("nonempty");
    b.ret(Some(last));
    p
}

fn gen_clusters(rng: &mut SmallRng, max_len: usize) -> Vec<u16> {
    let len = rng.gen_range(1..max_len);
    (0..len).map(|_| rng.gen_range(0..2u32) as u16).collect()
}

/// Random straight-line programs verify, execute without errors, and
/// are deterministic.
#[test]
fn random_programs_execute_deterministically() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x1337 ^ case);
        let p = realize(&gen_plan(&mut rng));
        mcpart::ir::verify_program(&p).expect("generated programs verify");
        let a = run(&p, &[], ExecConfig::default()).expect("executes");
        let b = run(&p, &[], ExecConfig::default()).expect("executes");
        assert_eq!(a.return_value, b.return_value, "case {case}");
        assert_eq!(a.memory, b.memory, "case {case}");
        assert_eq!(a.steps, b.steps, "case {case}");
        // Entry block runs exactly once.
        let entry = p.entry_function().entry;
        assert_eq!(a.profile.block_freq(p.entry, entry), 1, "case {case}");
    }
}

/// Random placements over random programs preserve semantics after move
/// insertion (the cornerstone invariant of the whole system).
#[test]
fn random_program_random_placement_equivalence() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0xE0 ^ case);
        let p = realize(&gen_plan(&mut rng));
        let clusters = gen_clusters(&mut rng, 200);
        let homes = gen_clusters(&mut rng, 4);
        let machine = mcpart::machine::Machine::paper_2cluster(5);
        let profile = mcpart::ir::Profile::uniform(&p, 1);
        let mut placement = mcpart::sched::Placement::all_on_cluster0(&p);
        for (fid, f) in p.functions.iter() {
            for (i, oid) in f.ops.keys().enumerate() {
                let c = clusters[i % clusters.len()] as usize;
                placement.set_cluster(fid, oid, mcpart::ir::ClusterId::new(c));
            }
        }
        for (i, home) in placement.object_home.values_mut().enumerate() {
            *home = Some(mcpart::ir::ClusterId::new(homes[i % homes.len()] as usize));
        }
        let pts = mcpart::analysis::PointsTo::compute(&p);
        let access = mcpart::analysis::AccessInfo::compute(&p, &pts, &profile);
        let normalized =
            mcpart::sched::normalize_placement(&p, &placement, &access, &machine, &profile);
        let (moved, _, _) = mcpart::sched::insert_moves(&p, &normalized, &machine);
        mcpart::ir::verify_program(&moved).expect("moved program verifies");
        assert!(
            mcpart::sim::semantically_equivalent(&p, &moved, &[], ExecConfig::default()).unwrap(),
            "case {case}"
        );
    }
}

/// The scheduler produces legal schedules for random programs under
/// random placements: dependences respected, lengths positive.
#[test]
fn random_program_schedules_are_legal() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x5c4ed ^ case);
        let p = realize(&gen_plan(&mut rng));
        let clusters = gen_clusters(&mut rng, 200);
        let machine = mcpart::machine::Machine::paper_2cluster(5);
        let profile = mcpart::ir::Profile::uniform(&p, 1);
        let mut placement = mcpart::sched::Placement::all_on_cluster0(&p);
        for (fid, f) in p.functions.iter() {
            for (i, oid) in f.ops.keys().enumerate() {
                let c = clusters[i % clusters.len()] as usize;
                placement.set_cluster(fid, oid, mcpart::ir::ClusterId::new(c));
            }
        }
        let pts = mcpart::analysis::PointsTo::compute(&p);
        let access = mcpart::analysis::AccessInfo::compute(&p, &pts, &profile);
        let normalized =
            mcpart::sched::normalize_placement(&p, &placement, &access, &machine, &profile);
        let (moved, moved_placement, _) = mcpart::sched::insert_moves(&p, &normalized, &machine);
        let fid = moved.entry;
        let f = &moved.functions[fid];
        for (bid, block) in f.blocks.iter() {
            let s = mcpart::sched::schedule_block(
                &moved,
                fid,
                bid,
                &moved_placement,
                &machine,
                &access_of(&moved, &profile),
            );
            if !block.ops.is_empty() {
                assert!(s.length >= 1, "case {case}");
            }
            // Dependence legality: every flow edge respected.
            assert_eq!(s.ops.len(), block.ops.len(), "case {case}");
        }
    }
}

fn access_of(p: &Program, profile: &mcpart::ir::Profile) -> mcpart::analysis::AccessInfo {
    let pts = mcpart::analysis::PointsTo::compute(p);
    mcpart::analysis::AccessInfo::compute(p, &pts, profile)
}
