//! End-to-end tests of the `mcpart` command-line binary.

use std::process::Command;

fn mcpart(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_mcpart")).args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// Like [`mcpart`] but returns the raw exit code, for tests that
/// distinguish usage errors (2) from runtime failures (1).
fn mcpart_code(args: &[&str]) -> (String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_mcpart")).args(args).output().expect("binary runs");
    (String::from_utf8_lossy(&out.stderr).into_owned(), out.status.code())
}

#[test]
fn list_shows_all_benchmarks() {
    let (stdout, _, ok) = mcpart(&["list"]);
    assert!(ok);
    assert!(stdout.contains("rawcaudio"));
    assert!(stdout.contains("viterbi"));
    assert_eq!(stdout.lines().count(), 23, "{stdout}"); // header + 22
}

#[test]
fn run_reports_cycles() {
    let (stdout, _, ok) = mcpart(&["run", "fir", "--method", "gdp", "--latency", "5"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("cycles:"));
    assert!(stdout.contains("GDP"));
    assert!(stdout.contains("bytes per cluster"));
}

#[test]
fn compare_lists_all_methods() {
    let (stdout, _, ok) = mcpart(&["compare", "latnrm", "--latency", "1"]);
    assert!(ok, "{stdout}");
    for m in ["GDP", "Profile Max", "Naive", "Unified"] {
        assert!(stdout.contains(m), "missing {m} in {stdout}");
    }
}

#[test]
fn dump_exec_roundtrip_through_a_file() {
    let (text, _, ok) = mcpart(&["dump", "histogram"]);
    assert!(ok);
    let dir = std::env::temp_dir().join("mcpart_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("histogram.mcir");
    std::fs::write(&path, &text).unwrap();
    let (stdout, stderr, ok) = mcpart(&["exec", path.to_str().unwrap(), "--method", "naive"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("cycles:"), "{stdout}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn schedule_prints_a_timeline() {
    let (stdout, _, ok) = mcpart(&["schedule", "matmul", "--method", "unified"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("hottest block"));
    assert!(stdout.contains("cycle |"));
    assert!(stdout.contains("length:"));
}

#[test]
fn partition_lists_object_homes() {
    let (stdout, _, ok) = mcpart(&["partition", "rawdaudio"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("stepsizeTable"));
    assert!(stdout.contains("bytes per cluster"));
}

#[test]
fn trace_out_writes_a_valid_chrome_trace() {
    let dir = std::env::temp_dir().join("mcpart_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fir_trace.json");
    let path_str = path.to_str().unwrap();
    let (stdout, stderr, ok) = mcpart(&["run", "fir", "--trace-out", path_str, "--metrics"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("observability summary"), "{stdout}");
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let stats = mcpart::obs::json::validate_trace(&text).expect("trace parses");
    assert!(stats.spans > 0, "trace has no spans");
    for label in ["gdp/cut", "rhop/estimator_calls", "sim/cycles"] {
        assert!(stats.has_counter(label), "trace missing counter {label}");
    }

    // The bundled validator agrees, and enforces required counters.
    let (stdout, _, ok) = mcpart(&["trace-check", path_str, "--require", "gdp/cut,sim/cycles"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("ok ("), "{stdout}");
    let (stderr, code) = mcpart_code(&["trace-check", path_str, "--require", "no/such"]);
    assert_eq!(code, Some(1), "stderr: {stderr}");
    assert!(stderr.contains("missing required counter"), "{stderr}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn trace_check_rejects_malformed_traces() {
    let dir = std::env::temp_dir().join("mcpart_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bogus_trace.json");
    std::fs::write(&path, "{\"traceEvents\":[{\"ph\":\"X\"}]}").unwrap();
    let (stderr, code) = mcpart_code(&["trace-check", path.to_str().unwrap()]);
    assert_eq!(code, Some(1), "stderr: {stderr}");
    assert!(stderr.contains("invalid trace"), "{stderr}");
    std::fs::remove_file(&path).ok();
    let (stderr, code) = mcpart_code(&["trace-check"]);
    assert_eq!(code, Some(2), "stderr: {stderr}");
}

/// Unknown top-level keys are forward-compatibility territory:
/// trace-check warns on stderr but still exits 0. The supervision
/// counters (`supervise/retries`, `supervise/quarantined`) are emitted
/// on every metrics run, so they are part of the `--require`
/// vocabulary.
#[test]
fn trace_check_warns_on_unknown_top_level_keys_and_requires_supervision_counters() {
    let dir = std::env::temp_dir().join("mcpart_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("future_trace.json");
    let path_str = path.to_str().unwrap();
    let (_, stderr, ok) = mcpart(&["run", "fir", "--trace-out", path_str]);
    assert!(ok, "stderr: {stderr}");
    // A newer producer added a top-level section this build does not
    // know about.
    let text = std::fs::read_to_string(&path).expect("trace written");
    let future = text.replacen('{', "{\"futureExtension\":{\"v\":2},", 1);
    std::fs::write(&path, future).unwrap();
    let (stdout, stderr, ok) = mcpart(&["trace-check", path_str]);
    assert!(ok, "unknown keys must not fail validation: {stderr}");
    assert!(stdout.contains("ok ("), "{stdout}");
    assert!(
        stderr.contains("warning") && stderr.contains("futureExtension"),
        "no warning for the unknown key: {stderr}"
    );
    let (_, stderr, ok) =
        mcpart(&["trace-check", path_str, "--require", "supervise/retries,supervise/quarantined"]);
    assert!(ok, "supervision counters missing from the trace: {stderr}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_input_fails_cleanly() {
    let (_, stderr, ok) = mcpart(&["run", "not-a-benchmark"]);
    assert!(!ok);
    assert!(stderr.contains("neither a known benchmark"), "{stderr}");
    let (_, stderr, ok) = mcpart(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");
}

#[test]
fn usage_errors_exit_2_with_usage_on_stderr() {
    for args in [
        &["run", "fir", "--method", "quantum"][..],
        &["run", "fir", "--latency", "fast"],
        &["run", "fir", "--clusters", "0"],
        &["compare", "fir", "--gdp-fuel", "lots"],
        &["frobnicate"],
        &[],
    ] {
        let (stderr, code) = mcpart_code(args);
        assert_eq!(code, Some(2), "args {args:?}\nstderr: {stderr}");
        assert!(stderr.contains("usage:"), "args {args:?}\nstderr: {stderr}");
    }
}

#[test]
fn runtime_failures_exit_1_without_usage_spam() {
    for args in [
        &["run", "not-a-benchmark"][..],
        &["exec", "/nonexistent/program.mcir"],
        &["dump", "also-not-a-benchmark"],
    ] {
        let (stderr, code) = mcpart_code(args);
        assert_eq!(code, Some(1), "args {args:?}\nstderr: {stderr}");
        assert!(stderr.starts_with("error:"), "args {args:?}\nstderr: {stderr}");
        assert!(!stderr.contains("usage:"), "args {args:?}\nstderr: {stderr}");
    }
}

#[test]
fn success_exits_0() {
    let (stderr, code) = mcpart_code(&["list"]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
}

#[test]
fn trace_check_value_assertions_and_forbid() {
    let dir = std::env::temp_dir().join("mcpart_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("value_trace.json");
    let path_str = path.to_str().unwrap();
    let (_, stderr, ok) = mcpart(&["run", "fir", "--trace-out", path_str]);
    assert!(ok, "stderr: {stderr}");

    // A clean run: the supervision counters end at zero, and neither
    // ever carried a nonzero sample.
    let (stdout, stderr, ok) = mcpart(&[
        "trace-check",
        path_str,
        "--require",
        "supervise/retries=0,supervise/quarantined=0",
        "--forbid",
        "supervise/retries,supervise/quarantined",
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");

    // A wrong expected value fails with both values in the message.
    let (stderr, code) = mcpart_code(&["trace-check", path_str, "--require", "sim/cycles=1"]);
    assert_eq!(code, Some(1), "stderr: {stderr}");
    assert!(stderr.contains("expected 1"), "{stderr}");

    // Forbidding a counter that did fire fails.
    let (stderr, code) = mcpart_code(&["trace-check", path_str, "--forbid", "sim/cycles"]);
    assert_eq!(code, Some(1), "stderr: {stderr}");
    assert!(stderr.contains("forbidden counter"), "{stderr}");

    // A non-integer value is a usage error, not a runtime one.
    let (stderr, code) = mcpart_code(&["trace-check", path_str, "--require", "sim/cycles=fast"]);
    assert_eq!(code, Some(2), "stderr: {stderr}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn stats_renders_percentiles_from_a_trace() {
    let dir = std::env::temp_dir().join("mcpart_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stats_trace.json");
    let path_str = path.to_str().unwrap();
    let (_, stderr, ok) = mcpart(&["run", "fir", "--trace-out", path_str]);
    assert!(ok, "stderr: {stderr}");

    let (stdout, stderr, ok) = mcpart(&["stats", path_str]);
    assert!(ok, "stderr: {stderr}");
    for needle in ["p50", "p90", "p99", "pipeline/", "rhop/estimator_calls", "gdp/cut"] {
        assert!(stdout.contains(needle), "stats output missing {needle}:\n{stdout}");
    }

    // --pinned prints only the deterministic work histograms as JSON.
    let (pinned, stderr, ok) = mcpart(&["stats", path_str, "--pinned"]);
    assert!(ok, "stderr: {stderr}");
    assert!(pinned.contains("\"gdp/cut\""), "{pinned}");
    assert!(!pinned.contains("p50"), "--pinned must print JSON, not the table: {pinned}");
    std::fs::remove_file(&path).ok();

    // Missing path is a usage error; unreadable path a runtime one.
    let (_, code) = mcpart_code(&["stats"]);
    assert_eq!(code, Some(2));
    let (_, code) = mcpart_code(&["stats", "/nonexistent/trace.json"]);
    assert_eq!(code, Some(1));
}

/// Fresh vs crash-and-resume must agree on the pinned histograms: a
/// resumed run replays recorded pinned events, so the derived metrics
/// are byte-identical to an uninterrupted run's.
#[test]
fn stats_pinned_payload_is_identical_fresh_vs_resume() {
    let dir = std::env::temp_dir().join("mcpart_cli_stats_resume");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let ck = dir.join("ck.jsonl");
    let fresh = dir.join("fresh.json");
    let resumed = dir.join("resumed.json");

    let (_, stderr, ok) = mcpart(&["compare", "fir", "--trace-out", fresh.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");

    // Die mid-append after two of the four units, then resume. The
    // obs sink must be on (--metrics) so the surviving checkpoint
    // records carry their pinned events for replay.
    let (_, code) = mcpart_code(&[
        "compare",
        "fir",
        "--checkpoint",
        ck.to_str().unwrap(),
        "--metrics",
        "--halt-after",
        "2",
    ]);
    assert_ne!(code, Some(0), "--halt-after must abort");
    let (_, stderr, ok) = mcpart(&[
        "compare",
        "fir",
        "--checkpoint",
        ck.to_str().unwrap(),
        "--resume",
        "--trace-out",
        resumed.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");

    let (a, stderr, ok) = mcpart(&["stats", fresh.to_str().unwrap(), "--pinned"]);
    assert!(ok, "stderr: {stderr}");
    let (b, stderr, ok) = mcpart(&["stats", resumed.to_str().unwrap(), "--pinned"]);
    assert!(ok, "stderr: {stderr}");
    assert!(!a.trim().is_empty());
    assert_eq!(a, b, "pinned histograms differ between fresh and resumed runs");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_diff_gates_regressions_with_distinct_exit_codes() {
    let dir = std::env::temp_dir().join("mcpart_cli_bench_diff");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let doc = |cycles: i64| {
        format!(
            r#"{{"schema_version":1,"benchmark":"partition-pipeline",
  "workloads":[{{"benchmark":"fir","cycles":{cycles},"estimator_calls":500,
                 "partition_secs":0.5}}],
  "suite_secs_parallel":1.0,"parallel_speedup":3.0}}"#
        )
    };
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    let bad = dir.join("bad.json");
    std::fs::write(&old, doc(1000)).unwrap();
    std::fs::write(&new, doc(1200)).unwrap(); // +20% cycles
    std::fs::write(&bad, "{\"workloads\":[]}").unwrap(); // no schema_version

    // Self-diff is clean, exit 0.
    let (stdout, stderr, ok) =
        mcpart(&["bench-diff", old.to_str().unwrap(), old.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("0 regression(s)"), "{stdout}");

    // A work regression exits 1 and names the metric.
    let (stderr, code) = mcpart_code(&["bench-diff", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(code, Some(1), "stderr: {stderr}");
    let (stdout, _, _) = mcpart(&["bench-diff", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert!(stdout.contains("regression: fir/cycles"), "{stdout}");

    // A loose threshold lets the same pair pass.
    let (_, stderr, ok) =
        mcpart(&["bench-diff", old.to_str().unwrap(), new.to_str().unwrap(), "--threshold", "25"]);
    assert!(ok, "a 25% threshold must pass a 20% change: {stderr}");

    // A malformed artifact is a configuration error: exit 2.
    let (stderr, code) = mcpart_code(&["bench-diff", old.to_str().unwrap(), bad.to_str().unwrap()]);
    assert_eq!(code, Some(2), "stderr: {stderr}");
    assert!(stderr.contains("schema_version"), "{stderr}");

    // Flag errors are usage errors.
    let (_, code) = mcpart_code(&["bench-diff", old.to_str().unwrap()]);
    assert_eq!(code, Some(2));
    let (_, code) = mcpart_code(&[
        "bench-diff",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--threshold",
        "lots",
    ]);
    assert_eq!(code, Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exec_runtime_failure_reports_execution_error() {
    // A structurally valid program that divides by zero: the CLI must
    // report the execution failure with exit 1, not unwind.
    let text = "\
program crashy
entry fn0
func main() {
bb0 (entry):
  op0: v0 = iconst 1
  op1: v1 = iconst 0
  op2: v2 = div v0, v1
  -> return v2
}
";
    let dir = std::env::temp_dir().join("mcpart_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("crashy.mcir");
    std::fs::write(&path, text).unwrap();
    let (stderr, code) = mcpart_code(&["exec", path.to_str().unwrap()]);
    assert_eq!(code, Some(1), "stderr: {stderr}");
    assert!(stderr.contains("execution failed"), "{stderr}");
    assert!(stderr.contains("division by zero"), "{stderr}");
    std::fs::remove_file(&path).ok();
}
