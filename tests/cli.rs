//! End-to-end tests of the `mcpart` command-line binary.

use std::process::Command;

fn mcpart(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_mcpart"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn list_shows_all_benchmarks() {
    let (stdout, _, ok) = mcpart(&["list"]);
    assert!(ok);
    assert!(stdout.contains("rawcaudio"));
    assert!(stdout.contains("viterbi"));
    assert_eq!(stdout.lines().count(), 23, "{stdout}"); // header + 22
}

#[test]
fn run_reports_cycles() {
    let (stdout, _, ok) = mcpart(&["run", "fir", "--method", "gdp", "--latency", "5"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("cycles:"));
    assert!(stdout.contains("GDP"));
    assert!(stdout.contains("bytes per cluster"));
}

#[test]
fn compare_lists_all_methods() {
    let (stdout, _, ok) = mcpart(&["compare", "latnrm", "--latency", "1"]);
    assert!(ok, "{stdout}");
    for m in ["GDP", "Profile Max", "Naive", "Unified"] {
        assert!(stdout.contains(m), "missing {m} in {stdout}");
    }
}

#[test]
fn dump_exec_roundtrip_through_a_file() {
    let (text, _, ok) = mcpart(&["dump", "histogram"]);
    assert!(ok);
    let dir = std::env::temp_dir().join("mcpart_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("histogram.mcir");
    std::fs::write(&path, &text).unwrap();
    let (stdout, stderr, ok) =
        mcpart(&["exec", path.to_str().unwrap(), "--method", "naive"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("cycles:"), "{stdout}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn schedule_prints_a_timeline() {
    let (stdout, _, ok) = mcpart(&["schedule", "matmul", "--method", "unified"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("hottest block"));
    assert!(stdout.contains("cycle |"));
    assert!(stdout.contains("length:"));
}

#[test]
fn partition_lists_object_homes() {
    let (stdout, _, ok) = mcpart(&["partition", "rawdaudio"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("stepsizeTable"));
    assert!(stdout.contains("bytes per cluster"));
}

#[test]
fn bad_input_fails_cleanly() {
    let (_, stderr, ok) = mcpart(&["run", "not-a-benchmark"]);
    assert!(!ok);
    assert!(stderr.contains("neither a known benchmark"), "{stderr}");
    let (_, stderr, ok) = mcpart(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");
}
