//! End-to-end integration tests: every method on real workloads, with
//! semantic validation and structural checks.

use mcpart::core::{run_pipeline, Method, PipelineConfig};
use mcpart::ir::verify_program;
use mcpart::machine::Machine;

fn pipeline_checks(benchmark: &str, latency: u32) {
    let w = mcpart::workloads::by_name(benchmark).expect("known benchmark");
    let machine = Machine::paper_2cluster(latency);
    let mut unified_cycles = None;
    for method in Method::ALL {
        let mut cfg = PipelineConfig::new(method);
        cfg.validate = true; // interpreter equivalence of the transformed program
        let run = run_pipeline(&w.program, &w.profile, &machine, &cfg).expect("pipeline");
        verify_program(&run.program).expect("transformed program verifies");
        assert!(run.cycles() > 0, "{benchmark}/{method}: zero cycles");
        // The placement must cover the transformed program exactly.
        for (fid, f) in run.program.functions.iter() {
            assert_eq!(run.placement.op_cluster[fid].len(), f.num_ops());
        }
        if method == Method::Unified {
            unified_cycles = Some(run.cycles());
            assert!(!run.placement.has_object_homes(), "unified memory has no homes");
            assert_eq!(run.data_bytes.iter().sum::<u64>(), 0);
        } else {
            assert!(
                run.placement.object_home.values().all(Option::is_some),
                "{benchmark}/{method}: every object needs a home under partitioned memory"
            );
        }
    }
    // Partitioned methods should stay within a sane band of unified
    // (they can exceed it — the paper observes this — but not be
    // arbitrarily worse).
    let unified = unified_cycles.expect("unified ran") as f64;
    for method in [Method::Gdp, Method::ProfileMax] {
        let run = run_pipeline(&w.program, &w.profile, &machine, &PipelineConfig::new(method))
            .expect("pipeline");
        let rel = unified / run.cycles() as f64;
        assert!(rel > 0.4, "{benchmark}/{method} at {latency}cy fell to {rel:.2} of unified");
    }
}

#[test]
fn rawcaudio_all_methods_5_cycles() {
    pipeline_checks("rawcaudio", 5);
}

#[test]
fn rawdaudio_all_methods_10_cycles() {
    pipeline_checks("rawdaudio", 10);
}

#[test]
fn fir_all_methods_1_cycle() {
    pipeline_checks("fir", 1);
}

#[test]
fn matmul_all_methods_5_cycles() {
    pipeline_checks("matmul", 5);
}

#[test]
fn fsed_all_methods_5_cycles() {
    pipeline_checks("fsed", 5);
}

#[test]
fn mpeg2enc_all_methods_5_cycles() {
    pipeline_checks("mpeg2enc", 5);
}

#[test]
fn every_workload_runs_gdp() {
    let machine = Machine::paper_2cluster(5);
    for w in mcpart::workloads::all() {
        let run = run_pipeline(&w.program, &w.profile, &machine, &PipelineConfig::new(Method::Gdp))
            .expect("pipeline");
        verify_program(&run.program)
            .unwrap_or_else(|e| panic!("{}: transformed program invalid: {e}", w.name));
        assert!(run.cycles() > 0, "{}", w.name);
        // Data must actually be distributed: at least one object on a
        // non-zero cluster for multi-object benchmarks.
        if w.program.total_object_size() > 512 {
            let nonzero: u64 = run.data_bytes[1..].iter().sum();
            assert!(nonzero > 0, "{}: GDP left cluster 1 empty", w.name);
        }
    }
}

#[test]
fn gdp_beats_naive_on_average_at_high_latency() {
    // The paper's core claim (Figures 2 vs 8): intelligent data
    // partitioning preserves performance that naive placement loses at
    // high intercluster latencies. Averaged over a benchmark subset.
    let machine = Machine::paper_2cluster(10);
    let mut gdp_sum = 0.0;
    let mut naive_sum = 0.0;
    let names = ["rawcaudio", "rawdaudio", "cjpeg", "fir", "matmul", "epic"];
    for name in names {
        let w = mcpart::workloads::by_name(name).unwrap();
        let unified =
            run_pipeline(&w.program, &w.profile, &machine, &PipelineConfig::new(Method::Unified))
                .expect("pipeline");
        let gdp = run_pipeline(&w.program, &w.profile, &machine, &PipelineConfig::new(Method::Gdp))
            .expect("pipeline");
        let naive =
            run_pipeline(&w.program, &w.profile, &machine, &PipelineConfig::new(Method::Naive))
                .expect("pipeline");
        gdp_sum += unified.cycles() as f64 / gdp.cycles() as f64;
        naive_sum += unified.cycles() as f64 / naive.cycles() as f64;
    }
    let n = names.len() as f64;
    assert!(
        gdp_sum / n > naive_sum / n - 0.05,
        "GDP ({:.3}) should not trail Naive ({:.3}) on average",
        gdp_sum / n,
        naive_sum / n
    );
}

#[test]
fn profile_max_costs_two_detailed_runs() {
    let w = mcpart::workloads::by_name("fir").unwrap();
    let machine = Machine::paper_2cluster(5);
    let pm =
        run_pipeline(&w.program, &w.profile, &machine, &PipelineConfig::new(Method::ProfileMax))
            .expect("pipeline");
    let gdp = run_pipeline(&w.program, &w.profile, &machine, &PipelineConfig::new(Method::Gdp))
        .expect("pipeline");
    assert_eq!(pm.detailed_runs, 2);
    assert_eq!(gdp.detailed_runs, 1);
    // Estimator work should reflect the double run.
    assert!(pm.rhop_stats.estimator_calls > gdp.rhop_stats.estimator_calls);
}

#[test]
fn coherent_cache_model_runs_and_counts_remote_accesses() {
    let w = mcpart::workloads::by_name("rawcaudio").unwrap();
    let machine = Machine::paper_2cluster(5).with_coherent_cache(5);
    let mut cfg = PipelineConfig::new(Method::Gdp);
    cfg.validate = true;
    let run = run_pipeline(&w.program, &w.profile, &machine, &cfg).expect("pipeline");
    verify_program(&run.program).unwrap();
    assert!(run.cycles() > 0);
    // Under partitioned memory remote accesses are impossible; the
    // coherent model may have some but RHOP's penalty guidance should
    // keep most accesses local.
    let part = run_pipeline(
        &w.program,
        &w.profile,
        &Machine::paper_2cluster(5),
        &PipelineConfig::new(Method::Gdp),
    )
    .expect("pipeline");
    assert_eq!(part.report.dynamic_remote_accesses, 0);
    // Low penalty: coherent flexibility should be at least competitive
    // with a hard partition, certainly not catastrophically worse.
    let cheap = Machine::paper_2cluster(5).with_coherent_cache(1);
    let coh = run_pipeline(&w.program, &w.profile, &cheap, &PipelineConfig::new(Method::Gdp))
        .expect("pipeline");
    assert!(
        (coh.cycles() as f64) < part.cycles() as f64 * 1.3,
        "coherent {} vs partitioned {}",
        coh.cycles(),
        part.cycles()
    );
}

#[test]
fn all_extensions_compose() {
    // Optimizer + hoisted moves + software pipelining together, with
    // semantic validation, on a mixed benchmark subset. The graph
    // partitioner is seeded-stochastic, so a lucky plain partition can
    // edge out the optimized one on a single benchmark; the claim worth
    // holding is that the extensions win in aggregate, and never lose
    // badly anywhere.
    let machine = Machine::paper_2cluster(5);
    let mut total_all_on = 0u64;
    let mut total_baseline = 0u64;
    for name in ["rawcaudio", "fir", "histogram"] {
        let w = mcpart::workloads::by_name(name).unwrap();
        let mut cfg = PipelineConfig::new(Method::Gdp);
        cfg.pre_optimize = true;
        cfg.move_strategy = mcpart::sched::MoveStrategy::ProfileHoisted;
        cfg.software_pipelining = true;
        cfg.validate = true;
        let all_on = run_pipeline(&w.program, &w.profile, &machine, &cfg).expect("pipeline");
        let baseline =
            run_pipeline(&w.program, &w.profile, &machine, &PipelineConfig::new(Method::Gdp))
                .expect("pipeline");
        assert!(all_on.cycles() > 0);
        assert!(
            (all_on.cycles() as f64) < baseline.cycles() as f64 * 1.10,
            "{name}: extensions {} far worse than baseline {}",
            all_on.cycles(),
            baseline.cycles()
        );
        total_all_on += all_on.cycles();
        total_baseline += baseline.cycles();
    }
    assert!(
        total_all_on < total_baseline,
        "extensions {total_all_on} vs baseline {total_baseline} in aggregate"
    );
}
