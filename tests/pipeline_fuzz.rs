//! Full-stack differential fuzzing: random programs with loops,
//! branches and memory traffic run through the complete pipeline for
//! every method, validating semantics and report invariants.
//!
//! Programs are generated from a deterministic seeded PRNG
//! (`mcpart::rng`), so every run explores the same inputs and a failure
//! reproduces from its seed alone.

use mcpart::core::{run_pipeline, Method, PipelineConfig};
use mcpart::ir::{Cmp, DataObject, FunctionBuilder, IntBinOp, MemWidth, Program, VReg};
use mcpart::machine::Machine;
use mcpart::rng::prelude::*;
use mcpart::sim::{profile_run, ExecConfig};
use mcpart::workloads::counted_loop;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One straight-line operation of a segment.
#[derive(Clone, Debug)]
enum SegOp {
    Const(i64),
    Bin(u8, usize, usize),
    Cmp(u8, usize, usize),
    Select(usize, usize, usize),
    Load(u8, usize),
    Store(u8, usize, usize),
}

/// A program segment: straight-line, a counted loop, or a diamond.
#[derive(Clone, Debug)]
enum Segment {
    Straight(Vec<SegOp>),
    Loop(u8, Vec<SegOp>),
    Diamond(usize, Vec<SegOp>, Vec<SegOp>),
}

fn gen_segops(rng: &mut SmallRng, max: usize) -> Vec<SegOp> {
    let n = rng.gen_range(1..max.max(2));
    (0..n)
        .map(|_| match rng.gen_range(0..6u32) {
            0 => SegOp::Const(rng.gen_range(-100i64..100)),
            1 => SegOp::Bin(
                rng.gen_range(0..9u32) as u8,
                rng.gen_range(0..64usize),
                rng.gen_range(0..64usize),
            ),
            2 => SegOp::Cmp(
                rng.gen_range(0..6u32) as u8,
                rng.gen_range(0..64usize),
                rng.gen_range(0..64usize),
            ),
            3 => SegOp::Select(
                rng.gen_range(0..64usize),
                rng.gen_range(0..64usize),
                rng.gen_range(0..64usize),
            ),
            4 => SegOp::Load(rng.gen_range(0..4u32) as u8, rng.gen_range(0..16usize)),
            _ => SegOp::Store(
                rng.gen_range(0..4u32) as u8,
                rng.gen_range(0..16usize),
                rng.gen_range(0..64usize),
            ),
        })
        .collect()
}

fn gen_program(rng: &mut SmallRng) -> Vec<Segment> {
    let n = rng.gen_range(1..5usize);
    (0..n)
        .map(|_| match rng.gen_range(0..3u32) {
            0 => Segment::Straight(gen_segops(rng, 12)),
            1 => Segment::Loop(rng.gen_range(1..6u32) as u8, gen_segops(rng, 10)),
            _ => {
                Segment::Diamond(rng.gen_range(0..64usize), gen_segops(rng, 8), gen_segops(rng, 8))
            }
        })
        .collect()
}

fn emit_segops(
    b: &mut FunctionBuilder<'_>,
    ops: &[SegOp],
    values: &mut Vec<VReg>,
    objects: &[mcpart::ir::ObjectId],
) {
    let pick = |values: &[VReg], i: usize| values[i % values.len()];
    for op in ops {
        let v = match *op {
            SegOp::Const(c) => b.iconst(c),
            SegOp::Bin(k, x, y) => {
                let kinds = [
                    IntBinOp::Add,
                    IntBinOp::Sub,
                    IntBinOp::Mul,
                    IntBinOp::And,
                    IntBinOp::Or,
                    IntBinOp::Xor,
                    IntBinOp::Shl,
                    IntBinOp::Min,
                    IntBinOp::Max,
                ];
                let (a, c) = (pick(values, x), pick(values, y));
                b.ibin(kinds[k as usize % kinds.len()], a, c)
            }
            SegOp::Cmp(k, x, y) => {
                let kinds = [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge];
                let (a, c) = (pick(values, x), pick(values, y));
                b.icmp(kinds[k as usize % kinds.len()], a, c)
            }
            SegOp::Select(c, x, y) => {
                let (cc, a, d) = (pick(values, c), pick(values, x), pick(values, y));
                b.select(cc, a, d)
            }
            SegOp::Load(o, i) => {
                let obj = objects[o as usize % objects.len()];
                let base = b.addrof(obj);
                let off = b.iconst((i as i64 % 16) * 4);
                let addr = b.add(base, off);
                b.load(MemWidth::B4, addr)
            }
            SegOp::Store(o, i, v) => {
                let obj = objects[o as usize % objects.len()];
                let base = b.addrof(obj);
                let off = b.iconst((i as i64 % 16) * 4);
                let addr = b.add(base, off);
                let val = pick(values, v);
                b.store(MemWidth::B4, addr, val);
                continue;
            }
        };
        values.push(v);
    }
}

fn realize(segments: &[Segment]) -> Program {
    let mut p = Program::new("fuzz");
    let objects: Vec<_> =
        (0..4).map(|i| p.add_object(DataObject::global(format!("g{i}"), 64))).collect();
    let mut b = FunctionBuilder::entry(&mut p);
    let seed = b.iconst(1);
    let mut values = vec![seed];
    for seg in segments {
        match seg {
            Segment::Straight(ops) => emit_segops(&mut b, ops, &mut values, &objects),
            Segment::Loop(trips, ops) => {
                // Values defined inside the body stay local to it (the
                // body may be skipped only if trips == 0; we keep
                // trips >= 1 so everything below stays defined).
                let before = values.len();
                counted_loop(&mut b, i64::from(*trips).max(1), |b, i| {
                    values.push(i);
                    emit_segops(b, ops, &mut values, &objects);
                });
                values.truncate(before);
            }
            Segment::Diamond(c, then_ops, else_ops) => {
                let cond = values[*c % values.len()];
                let t = b.block("then");
                let e = b.block("else");
                let m = b.block("merge");
                b.branch(cond, t, e);
                let before = values.len();
                b.switch_to(t);
                emit_segops(&mut b, then_ops, &mut values, &objects);
                values.truncate(before);
                b.jump(m);
                b.switch_to(e);
                emit_segops(&mut b, else_ops, &mut values, &objects);
                values.truncate(before);
                b.jump(m);
                b.switch_to(m);
            }
        }
    }
    let result = *values.last().expect("nonempty");
    b.ret(Some(result));
    p
}

/// Every method's full pipeline preserves semantics and produces
/// coherent reports on random CFG programs.
#[test]
fn pipeline_is_sound_on_random_programs() {
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(0x9e3779b9 ^ seed);
        let program = realize(&gen_program(&mut rng));
        mcpart::ir::verify_program(&program).expect("generated program verifies");
        let profile =
            profile_run(&program, &[], ExecConfig::default()).expect("generated program executes");
        let latency = rng.gen_range(1..11u32);
        let machine = Machine::paper_2cluster(latency);
        let mut unified_cycles = None;
        for method in Method::ALL {
            let mut cfg = PipelineConfig::new(method);
            cfg.validate = true; // semantic equivalence, checked inside
            let run = run_pipeline(&program, &profile, &machine, &cfg)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(run.cycles() > 0, "seed {seed}");
            assert!(!run.was_downgraded(), "seed {seed}: {method} downgraded");
            mcpart::ir::verify_program(&run.program).expect("transformed program verifies");
            if method == Method::Unified {
                unified_cycles = Some(run.cycles());
            }
        }
        // Sanity: nothing is an order of magnitude from unified on these
        // tiny programs.
        let unified = unified_cycles.expect("unified ran") as f64;
        let gdp = run_pipeline(&program, &profile, &machine, &PipelineConfig::new(Method::Gdp))
            .expect("pipeline");
        assert!((gdp.cycles() as f64) < unified * 10.0 + 1000.0, "seed {seed}");
    }
}

/// The optimizer composes with the pipeline on random programs.
#[test]
fn optimizer_composes_with_pipeline() {
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(0xc0ffee ^ seed);
        let program = realize(&gen_program(&mut rng));
        let profile = profile_run(&program, &[], ExecConfig::default()).expect("executes");
        let machine = Machine::paper_2cluster(5);
        let mut cfg = PipelineConfig::new(Method::Gdp);
        cfg.pre_optimize = true;
        cfg.validate = true; // optimize + partition + moves must preserve semantics
        let run = run_pipeline(&program, &profile, &machine, &cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(run.cycles() > 0, "seed {seed}");
    }
}

/// Textual round-trip holds for arbitrary CFG programs, and the
/// reparsed program behaves identically.
#[test]
fn random_programs_roundtrip_through_text() {
    for seed in 0..16u64 {
        let mut rng = SmallRng::seed_from_u64(0x5eed ^ seed);
        let program = realize(&gen_program(&mut rng));
        let text = mcpart::ir::program_to_string(&program);
        let parsed = mcpart::ir::parse_program(&text).expect("round-trip parse");
        assert_eq!(&text, &mcpart::ir::program_to_string(&parsed), "seed {seed}");
        let a = mcpart::sim::run(&program, &[], ExecConfig::default()).expect("original runs");
        let b = mcpart::sim::run(&parsed, &[], ExecConfig::default()).expect("reparsed runs");
        assert_eq!(a.return_value, b.return_value, "seed {seed}");
        assert_eq!(a.memory, b.memory, "seed {seed}");
    }
}

/// Whatever the pipeline thinks of a random program — success, typed
/// error, anything — it must never panic. The Result boundary is the
/// contract; a panic is a bug even on inputs the pipeline rejects.
#[test]
fn pipeline_never_panics_on_random_programs() {
    for seed in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(0xdead ^ seed);
        let program = realize(&gen_program(&mut rng));
        let profile = profile_run(&program, &[], ExecConfig::default()).expect("executes");
        // Hostile configurations: starved budgets, zero timeouts.
        let configs: Vec<PipelineConfig> = Method::ALL
            .iter()
            .flat_map(|&m| {
                let mut starved = PipelineConfig::new(m);
                starved.gdp.fuel = Some(rng.gen_range(0..3u64));
                starved.rhop.max_estimator_calls = Some(rng.gen_range(0..5u64));
                let mut timed = PipelineConfig::new(m);
                timed.stage_budget = Some(std::time::Duration::ZERO);
                vec![PipelineConfig::new(m), starved, timed]
            })
            .collect();
        for cfg in configs {
            let machine = Machine::paper_2cluster(5);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let _ = run_pipeline(&program, &profile, &machine, &cfg);
            }));
            assert!(outcome.is_ok(), "seed {seed}: pipeline panicked under method {}", cfg.method);
        }
    }
}

fn mcpart_cli(args: &[&str]) -> (String, String, Option<i32>) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_mcpart"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

/// Corrupted checkpoint files must be rejected by `--resume` with exit
/// code 2 and a line/column diagnostic — never a panic. The one
/// sanctioned exception is an *unterminated* trailing line: that is the
/// artifact an honest crash leaves behind, and resume discards it with
/// a note and continues.
#[test]
fn corrupted_checkpoints_are_rejected_with_a_position_and_never_a_panic() {
    let dir = std::env::temp_dir().join("mcpart_checkpoint_fuzz");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let base = dir.join("base.json");
    std::fs::remove_file(&base).ok();
    let (_, stderr, code) = mcpart_cli(&["compare", "fir", "--checkpoint", base.to_str().unwrap()]);
    assert_eq!(code, Some(0), "seed checkpoint run failed: {stderr}");
    let full = std::fs::read_to_string(&base).expect("checkpoint exists");
    assert!(full.lines().count() >= 3, "expected header + records:\n{full}");

    let resume = |path: &std::path::Path| {
        mcpart_cli(&["compare", "fir", "--checkpoint", path.to_str().unwrap(), "--resume"])
    };
    let case = dir.join("case.json");
    let mut rejected = 0usize;

    // Structured corruption: every line, in turn, gets its JSON
    // punctuation broken while staying newline-terminated. For header
    // and record lines that is garbage-on-disk, not a crash artifact,
    // and must be refused with a position. Manifest lines are the one
    // tolerated exception: they are an incremental-replay *hint*, so a
    // corrupt one is silently dropped (the unit merely loses replay —
    // full recompute, never a wrong result, never an error).
    let mut manifests_tolerated = 0usize;
    for (i, line) in full.lines().enumerate().skip(1) {
        let broken: String = full
            .lines()
            .enumerate()
            .map(|(j, l)| if i == j { l.replacen(':', ";", 1) } else { l.to_string() } + "\n")
            .collect();
        std::fs::write(&case, broken).expect("write corpus case");
        let (_, stderr, code) = resume(&case);
        assert!(!stderr.contains("panicked"), "line {i}: {stderr}");
        if line.starts_with("{\"mcpart_manifest\"") {
            assert_eq!(code, Some(0), "broken manifest line {i} must be tolerated: {stderr}");
            manifests_tolerated += 1;
        } else {
            assert_eq!(code, Some(2), "broken line {i} must be a config error: {stderr}");
            assert!(
                stderr.contains(&format!("line {}", i + 1)) && stderr.contains("column"),
                "line {i}: diagnostic lost its position: {stderr}"
            );
            rejected += 1;
        }
    }
    assert!(rejected >= 2, "corpus did not exercise multiple records");
    assert!(manifests_tolerated >= 1, "corpus did not exercise a manifest line");

    // Headerless and non-JSON files: refused up front, still exit 2.
    for (label, bytes) in [
        ("empty", Vec::new()),
        ("garbage", b"this is not a checkpoint\n".to_vec()),
        ("binary", vec![0x00, 0xff, 0xfe, 0x07, 0x00, 0x0a]),
        ("json-but-not-a-header", b"{\"hello\":1}\n".to_vec()),
    ] {
        std::fs::write(&case, bytes).expect("write corpus case");
        let (_, stderr, code) = resume(&case);
        assert_eq!(code, Some(2), "{label}: expected config-error exit 2: {stderr}");
        assert!(!stderr.contains("panicked"), "{label}: {stderr}");
        assert!(stderr.starts_with("error:"), "{label}: {stderr}");
    }

    // Truncation sweep: cut the file at ~16 evenly spread byte
    // offsets. Past the header, any cut leaves either a clean record
    // prefix or a tolerated unterminated crash artifact — both resume
    // (exit 0). A cut inside the header loses the file's identity and
    // is refused (exit 2). Nothing may panic or mis-classify.
    let header_len = full.lines().next().map(str::len).unwrap_or(0);
    for cut in (1..full.len()).step_by((full.len() / 16).max(1)) {
        std::fs::write(&case, &full.as_bytes()[..cut]).expect("write corpus case");
        let (_, stderr, code) = resume(&case);
        assert!(!stderr.contains("panicked"), "cut at {cut}: {stderr}");
        if cut >= header_len {
            assert_eq!(code, Some(0), "cut at byte {cut} must resume: {stderr}");
        } else {
            assert_eq!(code, Some(2), "mid-header cut at {cut} must be refused: {stderr}");
        }
    }

    // Random single-byte mutations from the deterministic PRNG. A
    // mutation may happen to leave a valid checkpoint (resume -> 0) or
    // break a pinned-field hash (config error -> 2); it must never
    // panic and never hit a non-diagnostic exit.
    let mut rng = SmallRng::seed_from_u64(0xc4ec);
    for _ in 0..24 {
        let mut bytes = full.clone().into_bytes();
        let at = rng.gen_range(0..bytes.len() as u64) as usize;
        bytes[at] = rng.gen_range(0..256u64) as u8;
        std::fs::write(&case, &bytes).expect("write corpus case");
        let (_, stderr, code) = resume(&case);
        assert!(!stderr.contains("panicked"), "mutation at {at}: {stderr}");
        assert!(
            code == Some(0) || code == Some(2),
            "mutation at {at}: exit {code:?} is neither resume nor diagnostic: {stderr}"
        );
        if code == Some(2) {
            assert!(stderr.starts_with("error:"), "mutation at {at}: {stderr}");
        }
    }
}

/// The serve artifact cache is self-healing: every corruption of a
/// cache entry — truncation at any offset, random bit flips,
/// headerless or foreign content — must be *detected* (the verifier
/// refuses it), *evicted* (the corrupt file is deleted), and
/// *recomputed* with a final result file byte-identical to the clean
/// run's. A corrupt artifact may never be served.
#[test]
fn corrupted_cache_entries_are_detected_evicted_and_recomputed() {
    use mcpart::core::{
        program_fingerprint, verify_cache_entry, CheckpointHeader, Method, PipelineConfig,
    };

    let dir = std::env::temp_dir().join(format!("mcpart_cache_fuzz_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("spool dir");
    let submit = || {
        std::fs::write(dir.join("fir.job"), "{\"mcpart_job\":1,\"program\":\"fir\"}\n")
            .expect("submit job");
    };
    let drain = || mcpart_cli(&["serve", dir.to_str().unwrap(), "--drain"]);

    submit();
    let (_, stderr, code) = drain();
    assert_eq!(code, Some(0), "seed serve run failed: {stderr}");
    let baseline = std::fs::read(dir.join("out/fir.json")).expect("baseline result");
    let entry_path = std::fs::read_dir(dir.join("cache"))
        .expect("cache dir")
        .map(|e| e.expect("entry").path())
        .find(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
        .expect("cache entry exists");
    let pristine = std::fs::read(&entry_path).expect("cache entry");

    // The verifier's view of this entry, for the in-memory corpus.
    let workload = mcpart::workloads::by_name("fir").expect("fir exists");
    let header = CheckpointHeader {
        program: workload.program.name.clone(),
        program_hash: program_fingerprint(&workload.program),
        seed: PipelineConfig::new(Method::Gdp).rhop.seed,
        clusters: 2,
        latency: 5,
        memory: "partitioned".to_string(),
        gdp_fuel: None,
    };
    assert!(
        verify_cache_entry(&pristine, &header, "fir/gdp").is_ok(),
        "pristine entry must verify"
    );

    // Corruption corpus: truncation sweep, deterministic random bit
    // flips, headerless/foreign files.
    let mut corpus: Vec<(String, Vec<u8>)> = Vec::new();
    for cut in (0..pristine.len()).step_by((pristine.len() / 16).max(1)) {
        corpus.push((format!("truncation at {cut}"), pristine[..cut].to_vec()));
    }
    let mut rng = SmallRng::seed_from_u64(0xcac4e);
    for _ in 0..24 {
        let at = rng.gen_range(0..pristine.len() as u64) as usize;
        let bit = 1u8 << rng.gen_range(0..8u64);
        let mut bytes = pristine.clone();
        bytes[at] ^= bit;
        corpus.push((format!("bit flip {bit:#04x} at {at}"), bytes));
    }
    corpus.push(("empty".into(), Vec::new()));
    corpus.push(("headerless".into(), b"{\"hello\":1}\n".to_vec()));
    corpus.push(("garbage".into(), b"not a cache entry\n".to_vec()));
    corpus.push(("binary".into(), vec![0x00, 0xff, 0xfe, 0x07, 0x0a]));

    for (i, (label, bytes)) in corpus.iter().enumerate() {
        // Every corpus member is detected by the verifier (the
        // checksum footer covers every byte, so even a single-bit
        // flip that still parses is caught).
        assert!(
            verify_cache_entry(bytes, &header, "fir/gdp").is_err(),
            "{label}: verifier served a corrupt entry"
        );
        // End to end, on a spread of cases (each costs a recompute):
        // detection is reported, the entry is evicted, and the final
        // output is byte-identical to the clean run's.
        if i % 6 == 0 {
            std::fs::write(&entry_path, bytes).expect("plant corrupt entry");
            submit();
            let (stdout, stderr, code) = drain();
            assert_eq!(code, Some(0), "{label}: serve failed: {stderr}");
            assert!(
                stdout.contains("cache entry evicted"),
                "{label}: eviction not reported: {stdout}"
            );
            assert!(!stdout.contains("cache hit"), "{label}: served corrupt entry: {stdout}");
            let redone = std::fs::read(dir.join("out/fir.json")).expect("result");
            assert_eq!(redone, baseline, "{label}: recomputed output differs");
            let healed = std::fs::read(&entry_path).expect("entry rewritten after eviction");
            assert!(
                verify_cache_entry(&healed, &header, "fir/gdp").is_ok(),
                "{label}: healed entry does not verify"
            );
        }
    }
}

/// Regression: a starved GDP run walks the fallback ladder instead of
/// failing outright, and the result records the downgrade chain.
/// Corruption corpus for flight-recorder telemetry: every truncation
/// of a valid snapshot stream and a bit-flip sweep over every region
/// of the record must be *detected* — the damaged record is skipped,
/// counted, and never misparsed into wrong numbers — while all intact
/// records still decode.
#[test]
fn corrupted_telemetry_records_are_skipped_and_never_misparsed() {
    use mcpart::obs::metrics::MetricsRegistry;
    use mcpart::obs::recorder::{parse_telemetry, seal_record};

    // Build a two-record stream the way the recorder frames it.
    let mut registry = MetricsRegistry::new();
    let mut rng = SmallRng::seed_from_u64(41);
    for _ in 0..32 {
        registry.observe("gdp/cut", rng.gen_range(0i64..5000));
        registry.observe("rhop/function.estimator_calls", rng.gen_range(0i64..100_000));
        registry.observe_wall("serve/job", rng.gen_range(0u64..2_000_000));
    }
    let record = |run: u64, seq: u64, completed: i64| {
        seal_record(&format!(
            "{{\"mcpart_telemetry\":1,\"run\":{run},\"seq\":{seq},\"counters\":{{\
             \"completed\":{completed}}},\"metrics\":{}",
            registry.to_json()
        ))
    };
    let stream = format!("{}{}", record(1, 0, 1), record(1, 1, 2));
    let baseline = parse_telemetry(&stream);
    assert_eq!((baseline.snapshots.len(), baseline.skipped), (2, 0));

    // Truncation sweep: cutting anywhere inside the second record
    // loses exactly that record; the first still decodes with its
    // numbers intact.
    let first_len = stream.find("\n").expect("newline") + 1;
    for cut in first_len..stream.len() - 1 {
        let log = parse_telemetry(&stream[..cut]);
        assert_eq!(log.snapshots.len(), 1, "cut at {cut}: valid prefix lost");
        assert_eq!(log.snapshots[0].counters, vec![("completed".to_string(), 1)]);
    }

    // Bit-flip sweep: every region of a record (framing, counters,
    // histogram payload, checksum footer) is covered by the checksum.
    let bytes = stream.as_bytes();
    for pos in (0..first_len - 1).step_by(7) {
        for mask in [0x01u8, 0x20] {
            let mut flipped = bytes.to_vec();
            flipped[pos] ^= mask;
            if flipped[pos] == b'\n' || bytes[pos] == b'\n' {
                continue; // changing framing splits lines; separate case below
            }
            let Ok(text) = String::from_utf8(flipped) else { continue };
            let log = parse_telemetry(&text);
            assert_eq!(
                log.snapshots.len(),
                1,
                "flip at {pos} (mask {mask:#x}) went undetected or killed record 2"
            );
            assert_eq!(log.skipped, 1, "flip at {pos} not counted as skipped");
            assert_eq!(
                log.snapshots[0].counters,
                vec![("completed".to_string(), 2)],
                "flip at {pos} misparsed into wrong numbers"
            );
        }
    }

    // Garbage lines and torn tails between valid records are skipped.
    let littered = format!(
        "not json\n{}{{\"mcpart_telemetry\":1,\"run\":9\n{}",
        record(1, 0, 1),
        record(2, 0, 3)
    );
    let log = parse_telemetry(&littered);
    assert_eq!(log.snapshots.len(), 2, "valid records lost among garbage");
    assert_eq!(log.skipped, 2);
    let (reg, counters) = log.merged();
    assert_eq!(counters, vec![("completed".to_string(), 4)], "runs must sum");
    assert!(!reg.is_empty());
}

#[test]
fn starved_gdp_falls_back_through_the_ladder() {
    let mut rng = SmallRng::seed_from_u64(7);
    let program = realize(&gen_program(&mut rng));
    let profile = profile_run(&program, &[], ExecConfig::default()).expect("executes");
    let machine = Machine::paper_2cluster(5);
    let mut cfg = PipelineConfig::new(Method::Gdp);
    cfg.gdp.fuel = Some(0); // GDP's graph partitioner cannot take a single step
    cfg.validate = true;
    let run = run_pipeline(&program, &profile, &machine, &cfg).expect("ladder recovers");
    assert_eq!(run.requested_method, Method::Gdp);
    assert_eq!(run.method, Method::ProfileMax);
    assert_eq!(run.downgrades.len(), 1);
    assert_eq!(run.downgrades[0].from, Method::Gdp);
    assert_eq!(run.downgrades[0].to, Method::ProfileMax);
    assert!(run.cycles() > 0);
}
