//! Full-stack differential fuzzing: random programs with loops,
//! branches and memory traffic run through the complete pipeline for
//! every method, validating semantics and report invariants.

use mcpart::core::{run_pipeline, Method, PipelineConfig};
use mcpart::ir::{
    Cmp, DataObject, FunctionBuilder, IntBinOp, MemWidth, Program, VReg,
};
use mcpart::machine::Machine;
use mcpart::sim::{profile_run, ExecConfig};
use mcpart::workloads::counted_loop;
use proptest::prelude::*;

/// One straight-line operation of a segment.
#[derive(Clone, Debug)]
enum SegOp {
    Const(i64),
    Bin(u8, usize, usize),
    Cmp(u8, usize, usize),
    Select(usize, usize, usize),
    Load(u8, usize),
    Store(u8, usize, usize),
}

/// A program segment: straight-line, a counted loop, or a diamond.
#[derive(Clone, Debug)]
enum Segment {
    Straight(Vec<SegOp>),
    Loop(u8, Vec<SegOp>),
    Diamond(usize, Vec<SegOp>, Vec<SegOp>),
}

fn arb_segops(max: usize) -> impl Strategy<Value = Vec<SegOp>> {
    prop::collection::vec(
        prop_oneof![
            (-100i64..100).prop_map(SegOp::Const),
            (0u8..9, 0usize..64, 0usize..64).prop_map(|(k, a, b)| SegOp::Bin(k, a, b)),
            (0u8..6, 0usize..64, 0usize..64).prop_map(|(k, a, b)| SegOp::Cmp(k, a, b)),
            (0usize..64, 0usize..64, 0usize..64)
                .prop_map(|(c, a, b)| SegOp::Select(c, a, b)),
            (0u8..4, 0usize..16).prop_map(|(o, i)| SegOp::Load(o, i)),
            (0u8..4, 0usize..16, 0usize..64).prop_map(|(o, i, v)| SegOp::Store(o, i, v)),
        ],
        1..max,
    )
}

fn arb_program() -> impl Strategy<Value = Vec<Segment>> {
    prop::collection::vec(
        prop_oneof![
            arb_segops(12).prop_map(Segment::Straight),
            (1u8..6, arb_segops(10)).prop_map(|(t, ops)| Segment::Loop(t, ops)),
            (0usize..64, arb_segops(8), arb_segops(8))
                .prop_map(|(c, a, b)| Segment::Diamond(c, a, b)),
        ],
        1..5,
    )
}

fn emit_segops(
    b: &mut FunctionBuilder<'_>,
    ops: &[SegOp],
    values: &mut Vec<VReg>,
    objects: &[mcpart::ir::ObjectId],
) {
    let pick = |values: &[VReg], i: usize| values[i % values.len()];
    for op in ops {
        let v = match *op {
            SegOp::Const(c) => b.iconst(c),
            SegOp::Bin(k, x, y) => {
                let kinds = [
                    IntBinOp::Add,
                    IntBinOp::Sub,
                    IntBinOp::Mul,
                    IntBinOp::And,
                    IntBinOp::Or,
                    IntBinOp::Xor,
                    IntBinOp::Shl,
                    IntBinOp::Min,
                    IntBinOp::Max,
                ];
                let (a, c) = (pick(values, x), pick(values, y));
                b.ibin(kinds[k as usize % kinds.len()], a, c)
            }
            SegOp::Cmp(k, x, y) => {
                let kinds = [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge];
                let (a, c) = (pick(values, x), pick(values, y));
                b.icmp(kinds[k as usize % kinds.len()], a, c)
            }
            SegOp::Select(c, x, y) => {
                let (cc, a, d) = (pick(values, c), pick(values, x), pick(values, y));
                b.select(cc, a, d)
            }
            SegOp::Load(o, i) => {
                let obj = objects[o as usize % objects.len()];
                let base = b.addrof(obj);
                let off = b.iconst((i as i64 % 16) * 4);
                let addr = b.add(base, off);
                b.load(MemWidth::B4, addr)
            }
            SegOp::Store(o, i, v) => {
                let obj = objects[o as usize % objects.len()];
                let base = b.addrof(obj);
                let off = b.iconst((i as i64 % 16) * 4);
                let addr = b.add(base, off);
                let val = pick(values, v);
                b.store(MemWidth::B4, addr, val);
                continue;
            }
        };
        values.push(v);
    }
}

fn realize(segments: &[Segment]) -> Program {
    let mut p = Program::new("fuzz");
    let objects: Vec<_> = (0..4)
        .map(|i| p.add_object(DataObject::global(format!("g{i}"), 64)))
        .collect();
    let mut b = FunctionBuilder::entry(&mut p);
    let seed = b.iconst(1);
    let mut values = vec![seed];
    for seg in segments {
        match seg {
            Segment::Straight(ops) => emit_segops(&mut b, ops, &mut values, &objects),
            Segment::Loop(trips, ops) => {
                // Values defined inside the body stay local to it (the
                // body may be skipped only if trips == 0; we keep
                // trips >= 1 so everything below stays defined).
                let before = values.len();
                counted_loop(&mut b, i64::from(*trips).max(1), |b, i| {
                    values.push(i);
                    emit_segops(b, ops, &mut values, &objects);
                });
                values.truncate(before);
            }
            Segment::Diamond(c, then_ops, else_ops) => {
                let cond = values[*c % values.len()];
                let t = b.block("then");
                let e = b.block("else");
                let m = b.block("merge");
                b.branch(cond, t, e);
                let before = values.len();
                b.switch_to(t);
                emit_segops(&mut b, then_ops, &mut values, &objects);
                values.truncate(before);
                b.jump(m);
                b.switch_to(e);
                emit_segops(&mut b, else_ops, &mut values, &objects);
                values.truncate(before);
                b.jump(m);
                b.switch_to(m);
            }
        }
    }
    let result = *values.last().expect("nonempty");
    b.ret(Some(result));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every method's full pipeline preserves semantics and produces
    /// coherent reports on random CFG programs.
    #[test]
    fn pipeline_is_sound_on_random_programs(segments in arb_program(), latency in 1u32..11) {
        let program = realize(&segments);
        mcpart::ir::verify_program(&program).expect("generated program verifies");
        let profile = profile_run(&program, &[], ExecConfig::default())
            .expect("generated program executes");
        let machine = Machine::paper_2cluster(latency);
        let mut unified_cycles = None;
        for method in Method::ALL {
            let mut cfg = PipelineConfig::new(method);
            cfg.validate = true; // semantic equivalence, checked inside
            let run = run_pipeline(&program, &profile, &machine, &cfg);
            prop_assert!(run.cycles() > 0);
            mcpart::ir::verify_program(&run.program).expect("transformed program verifies");
            if method == Method::Unified {
                unified_cycles = Some(run.cycles());
            }
        }
        // Sanity: nothing is an order of magnitude from unified on these
        // tiny programs.
        let unified = unified_cycles.expect("unified ran") as f64;
        let gdp = run_pipeline(&program, &profile, &machine, &PipelineConfig::new(Method::Gdp));
        prop_assert!((gdp.cycles() as f64) < unified * 10.0 + 1000.0);
    }

    /// The optimizer composes with the pipeline on random programs.
    #[test]
    fn optimizer_composes_with_pipeline(segments in arb_program()) {
        let program = realize(&segments);
        let profile = profile_run(&program, &[], ExecConfig::default()).expect("executes");
        let machine = Machine::paper_2cluster(5);
        let mut cfg = PipelineConfig::new(Method::Gdp);
        cfg.pre_optimize = true;
        cfg.validate = true; // optimize + partition + moves must preserve semantics
        let run = run_pipeline(&program, &profile, &machine, &cfg);
        prop_assert!(run.cycles() > 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Textual round-trip holds for arbitrary CFG programs, and the
    /// reparsed program behaves identically.
    #[test]
    fn random_programs_roundtrip_through_text(segments in arb_program()) {
        let program = realize(&segments);
        let text = mcpart::ir::program_to_string(&program);
        let parsed = mcpart::ir::parse_program(&text).expect("round-trip parse");
        prop_assert_eq!(&text, &mcpart::ir::program_to_string(&parsed));
        let a = mcpart::sim::run(&program, &[], ExecConfig::default()).expect("original runs");
        let b = mcpart::sim::run(&parsed, &[], ExecConfig::default()).expect("reparsed runs");
        prop_assert_eq!(a.return_value, b.return_value);
        prop_assert_eq!(a.memory, b.memory);
    }
}
