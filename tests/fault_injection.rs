//! Fault-injection harness: systematically corrupt programs, profiles,
//! and placements (via `mcpart::sim::fault`) and assert that every
//! entry point — library pipeline, interpreter, placement validator,
//! and the `mcpart exec` CLI path — reports a typed `Err` and never
//! panics or hangs.

use mcpart::core::{run_pipeline, Method, PipelineConfig, PipelineErrorKind, Stage};
use mcpart::ir::{parse_program, verify_program, Profile, Program};
use mcpart::machine::Machine;
use mcpart::sim::{fault, profile_run, run, ExecConfig, ExecError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::Command;

fn workload(name: &str) -> (Program, Profile) {
    let w = mcpart::workloads::by_name(name).expect("known benchmark");
    (w.program, w.profile)
}

fn mcpart_cli(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_mcpart")).args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn hostile_mcir_never_panics_and_always_errors() {
    for (label, text) in fault::hostile_mcir() {
        let outcome = catch_unwind(AssertUnwindSafe(|| match parse_program(text) {
            Err(_) => true,
            Ok(p) => verify_program(&p).is_err(),
        }));
        let rejected = outcome.unwrap_or_else(|_| panic!("{label}: parser panicked"));
        assert!(rejected, "{label}: hostile input was accepted");
    }
}

#[test]
fn truncated_block_is_rejected_at_every_entry_point() {
    let (mut program, profile) = workload("fir");
    fault::truncate_entry_block(&mut program);
    // Interpreter entry points report the missing terminator.
    assert_eq!(
        run(&program, &[], ExecConfig::default()).unwrap_err(),
        ExecError::MissingTerminator
    );
    assert_eq!(
        profile_run(&program, &[], ExecConfig::default()).unwrap_err(),
        ExecError::MissingTerminator
    );
    // The pipeline rejects it at the verify gate, for every method.
    let machine = Machine::paper_2cluster(5);
    for method in Method::ALL {
        let e = run_pipeline(&program, &profile, &machine, &PipelineConfig::new(method))
            .expect_err("unverified program must not partition");
        assert_eq!(e.stage, Stage::Verify, "{method}: {e}");
        assert!(matches!(e.kind, PipelineErrorKind::Verify(_)), "{method}: {e}");
    }
}

#[test]
fn dangling_object_id_is_rejected_at_the_verify_gate() {
    let (mut program, profile) = workload("rawcaudio");
    assert!(fault::dangle_object_id(&mut program), "rawcaudio has memory operations");
    let machine = Machine::paper_2cluster(5);
    let e = run_pipeline(&program, &profile, &machine, &PipelineConfig::new(Method::Gdp))
        .expect_err("dangling object id must not partition");
    assert_eq!(e.stage, Stage::Verify);
    assert!(e.to_string().contains("object"), "{e}");
}

#[test]
fn zero_size_objects_never_panic() {
    let machine = Machine::paper_2cluster(5);
    for name in ["rawcaudio", "fir", "histogram"] {
        let (mut program, profile) = workload(name);
        fault::zero_object_sizes(&mut program);
        for method in Method::ALL {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                run_pipeline(&program, &profile, &machine, &PipelineConfig::new(method)).is_ok()
            }));
            assert!(outcome.is_ok(), "{name}/{method}: panicked on zero-size objects");
        }
    }
}

#[test]
fn cyclic_program_is_stopped_by_the_step_budget() {
    let (mut program, profile) = workload("fir");
    fault::make_cyclic(&mut program);
    // Direct interpretation must hit the step limit, not spin.
    let small = ExecConfig { step_limit: 10_000, ..ExecConfig::default() };
    assert_eq!(run(&program, &[], small).unwrap_err(), ExecError::StepLimit);
    // Through the pipeline with validation on, the budgeted validation
    // run fails with a typed error instead of hanging the stage.
    let machine = Machine::paper_2cluster(5);
    let mut cfg = PipelineConfig::new(Method::Gdp);
    cfg.validate = true;
    cfg.exec = small;
    let e = run_pipeline(&program, &profile, &machine, &cfg)
        .expect_err("cyclic program must not validate");
    assert_eq!(e.stage, Stage::SemanticValidation, "{e}");
    assert!(matches!(e.kind, PipelineErrorKind::Exec(ExecError::StepLimit)), "{e}");
}

#[test]
fn mismatched_profile_is_rejected_before_partitioning() {
    let (program, mut profile) = workload("fir");
    fault::corrupt_profile(&mut profile);
    let machine = Machine::paper_2cluster(5);
    let e = run_pipeline(&program, &profile, &machine, &PipelineConfig::new(Method::Gdp))
        .expect_err("mismatched profile must be rejected");
    assert_eq!(e.stage, Stage::Analysis, "{e}");
    assert!(matches!(e.kind, PipelineErrorKind::Profile(_)), "{e}");
}

#[test]
fn corrupted_placements_fail_validation() {
    let (program, profile) = workload("fir");
    let machine = Machine::paper_2cluster(5);
    let good = run_pipeline(&program, &profile, &machine, &PipelineConfig::new(Method::Gdp))
        .expect("pipeline");
    let pts = mcpart::analysis::PointsTo::compute(&good.program);
    let access = mcpart::analysis::AccessInfo::compute(&good.program, &pts, &profile);
    mcpart::sched::validate_placement(&good.program, &good.placement, &access, &machine)
        .expect("the pipeline's own placement validates");
    let mut off_cluster = good.placement.clone();
    assert!(fault::misplace_op(&mut off_cluster));
    assert!(
        mcpart::sched::validate_placement(&good.program, &off_cluster, &access, &machine).is_err(),
        "an op on cluster 999 must fail validation"
    );
    let mut off_home = good.placement.clone();
    assert!(fault::misplace_object(&mut off_home));
    assert!(
        mcpart::sched::validate_placement(&good.program, &off_home, &access, &machine).is_err(),
        "an object homed on cluster 999 must fail validation"
    );
}

#[test]
fn downgrade_is_visible_in_the_pipeline_result() {
    let (program, profile) = workload("fir");
    let machine = Machine::paper_2cluster(5);
    let mut cfg = PipelineConfig::new(Method::Gdp);
    cfg.gdp.fuel = Some(0); // starve GDP so the ladder engages
    let run = run_pipeline(&program, &profile, &machine, &cfg).expect("ladder recovers");
    assert!(run.was_downgraded());
    assert_eq!(run.requested_method, Method::Gdp);
    assert_eq!(run.method, Method::ProfileMax);
    assert_eq!(run.downgrades.len(), 1);
    assert_eq!(run.downgrades[0].from, Method::Gdp);
    assert_eq!(run.downgrades[0].to, Method::ProfileMax);
}

#[test]
fn cli_exec_rejects_every_hostile_file_without_crashing() {
    let dir = std::env::temp_dir().join("mcpart_fault_injection");
    std::fs::create_dir_all(&dir).unwrap();
    for (label, text) in fault::hostile_mcir() {
        let path = dir.join(format!("{label}.mcir"));
        std::fs::write(&path, text).unwrap();
        let (_, stderr, code) = mcpart_cli(&["exec", path.to_str().unwrap()]);
        assert_eq!(code, Some(1), "{label}: expected input-failure exit 1\nstderr: {stderr}");
        assert!(stderr.starts_with("error:"), "{label}: stderr was `{stderr}`");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn cli_exec_parse_errors_carry_line_and_column() {
    let dir = std::env::temp_dir().join("mcpart_fault_injection");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad_opcode.mcir");
    let (_, text) =
        fault::hostile_mcir().into_iter().find(|(label, _)| *label == "unknown-opcode").unwrap();
    std::fs::write(&path, text).unwrap();
    let (_, stderr, code) = mcpart_cli(&["exec", path.to_str().unwrap()]);
    assert_eq!(code, Some(1), "stderr: {stderr}");
    assert!(stderr.contains("line 5, column 13"), "no position in `{stderr}`");
    assert!(stderr.contains("summon"), "no offending token in `{stderr}`");
    std::fs::remove_file(&path).ok();
}

/// Every injection scenario behaves identically at `--jobs 4` and
/// `--jobs 1`: the same outcome (typed error string, or cycles + final
/// method + quarantine set on recovery) and a byte-identical pinned
/// observability log. Supervision — retries, quarantine, the
/// degradation ladder — must not leak worker-count nondeterminism.
#[test]
fn every_injection_scenario_is_jobs_invariant() {
    use mcpart::core::PanicPlan;
    type Mutate = fn(&mut Program, &mut Profile, &mut PipelineConfig);
    let scenarios: [(&str, &str, Mutate); 7] = [
        ("truncated-block", "fir", |p, _, _| fault::truncate_entry_block(p)),
        ("dangling-object", "rawcaudio", |p, _, _| {
            fault::dangle_object_id(p);
        }),
        ("zero-size-objects", "rawcaudio", |p, _, _| fault::zero_object_sizes(p)),
        ("corrupt-profile", "fir", |_, prof, _| fault::corrupt_profile(prof)),
        ("cyclic-program", "fir", |p, _, cfg| {
            fault::make_cyclic(p);
            cfg.validate = true;
            cfg.exec = mcpart::sim::ExecConfig { step_limit: 10_000, ..Default::default() };
        }),
        ("starved-gdp-ladder", "fir", |_, _, cfg| cfg.gdp.fuel = Some(0)),
        ("quarantined-panic", "rawcaudio", |_, _, cfg| {
            cfg.rhop.inject_panic = Some(PanicPlan::always("main"));
        }),
    ];
    let machine = Machine::paper_2cluster(5);
    for (label, name, mutate) in scenarios {
        let (mut program, mut profile) = workload(name);
        let mut base = PipelineConfig::new(Method::Gdp);
        mutate(&mut program, &mut profile, &mut base);
        let run_at = |jobs: usize| {
            let obs = mcpart::obs::Obs::enabled();
            let cfg = base.clone().with_jobs(jobs).with_obs(obs.clone());
            let outcome = run_pipeline(&program, &profile, &machine, &cfg)
                .map(|r| {
                    let quarantined: Vec<String> =
                        r.quarantine().names().iter().map(|s| s.to_string()).collect();
                    (r.cycles(), r.method, r.downgrades.len(), quarantined)
                })
                .map_err(|e| e.to_string());
            (outcome, obs.pinned_log())
        };
        let (ref_outcome, ref_log) = run_at(1);
        let (par_outcome, par_log) = run_at(4);
        assert_eq!(ref_outcome, par_outcome, "{label}: outcome changed with --jobs 4");
        assert_eq!(ref_log, par_log, "{label}: pinned trace changed with --jobs 4");
    }
}

#[test]
fn cli_compare_reports_the_downgrade() {
    let (stdout, stderr, code) = mcpart_cli(&["compare", "fir", "--gdp-fuel", "0"]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("GDP->Profile Max"), "no downgrade label in:\n{stdout}");
    assert!(
        stderr.contains("warning: downgraded GDP -> Profile Max"),
        "no downgrade warning in `{stderr}`"
    );
}
