//! The RHOP schedule estimator must agree with the real list scheduler
//! closely enough that refinement decisions transfer.

use mcpart::analysis::{AccessInfo, PointsTo};
use mcpart::ir::ClusterId;
use mcpart::machine::Machine;
use mcpart::sched::{schedule_block, Placement, RegionEstimator, INFEASIBLE};
use mcpart_rng::rngs::SmallRng;
use mcpart_rng::{Rng, SeedableRng};

/// For every block of a workload, under a few random placements, the
/// estimator's length must stay within a modest band of the real
/// scheduler's (the estimator skips the branch-last rule and models
/// moves virtually, so exact agreement is not expected).
#[test]
fn estimator_tracks_scheduler_on_blocks() {
    let machine = Machine::paper_2cluster(5);
    let mut rng = SmallRng::seed_from_u64(42);
    for name in ["rawcaudio", "fir", "matmul", "cjpeg"] {
        let w = mcpart::workloads::by_name(name).unwrap();
        let program = w.profile.apply_heap_sizes(&w.program);
        let pts = PointsTo::compute(&program);
        let access = AccessInfo::compute(&program, &pts, &w.profile);
        for (fid, f) in program.functions.iter() {
            for (bid, block) in f.blocks.iter() {
                if block.ops.len() < 4 {
                    continue;
                }
                let est = RegionEstimator::new(&program, fid, &[bid], &access, &machine);
                for _ in 0..3 {
                    let mut placement = Placement::all_on_cluster0(&program);
                    let assign: Vec<u16> = (0..est.len()).map(|_| rng.gen_range(0..2u16)).collect();
                    // A consistent placement: defs of the same register
                    // must share a cluster — enforce by clustering per
                    // node independently, then letting vreg_homes use
                    // first-def. To keep the comparison faithful we only
                    // use single-def-friendly random assignments where
                    // the block's ops get the random clusters and
                    // everything else stays on 0.
                    for (i, &op) in est.dg.ops.iter().enumerate() {
                        placement.set_cluster(fid, op, ClusterId::new(assign[i] as usize));
                    }
                    let e = est.estimate(&assign);
                    if e == INFEASIBLE {
                        continue;
                    }
                    let s = schedule_block(&program, fid, bid, &placement, &machine, &access);
                    let actual = s.length.max(1);
                    // The raw scheduler does not see the intercluster
                    // moves that insertion would add for this split
                    // (the estimator charges them as virtual
                    // transfers), so the estimate may legitimately
                    // exceed the raw schedule; it must never collapse
                    // below it by much, nor explode.
                    let ratio = e as f64 / actual as f64;
                    assert!(
                        (0.5..=10.0).contains(&ratio),
                        "{name} {fid}/{bid}: estimate {e} vs actual {actual}"
                    );
                }
            }
        }
    }
}

/// On single-cluster assignments (no moves at all), the estimator and
/// scheduler see the same dependence structure and resources, so they
/// should agree within the branch-last slack.
#[test]
fn estimator_matches_scheduler_single_cluster() {
    let machine = Machine::paper_2cluster(5);
    let w = mcpart::workloads::by_name("latnrm").unwrap();
    let program = w.profile.apply_heap_sizes(&w.program);
    let pts = PointsTo::compute(&program);
    let access = AccessInfo::compute(&program, &pts, &w.profile);
    let placement = Placement::all_on_cluster0(&program);
    for (fid, f) in program.functions.iter() {
        for (bid, block) in f.blocks.iter() {
            if block.ops.is_empty() {
                continue;
            }
            let est = RegionEstimator::new(&program, fid, &[bid], &access, &machine);
            let e = est.estimate_single_cluster();
            let s = schedule_block(&program, fid, bid, &placement, &machine, &access);
            let diff = (e as i64 - s.length as i64).unsigned_abs();
            assert!(
                diff <= 3,
                "{fid}/{bid} ({} ops): estimate {e} vs schedule {}",
                block.ops.len(),
                s.length
            );
        }
    }
}

/// Estimates are monotone in machine generosity: a 1-cycle network
/// never estimates slower than a 10-cycle network for the same split
/// assignment.
#[test]
fn estimator_monotone_in_move_latency() {
    let w = mcpart::workloads::by_name("fft").unwrap();
    let program = w.profile.apply_heap_sizes(&w.program);
    let pts = PointsTo::compute(&program);
    let access = AccessInfo::compute(&program, &pts, &w.profile);
    let fid = program.entry;
    let f = &program.functions[fid];
    let (bid, _) = f.blocks.iter().max_by_key(|(_, b)| b.ops.len()).expect("nonempty function");
    let fast = Machine::paper_2cluster(1);
    let slow = Machine::paper_2cluster(10);
    let est_fast = RegionEstimator::new(&program, fid, &[bid], &access, &fast);
    let est_slow = RegionEstimator::new(&program, fid, &[bid], &access, &slow);
    let assign: Vec<u16> = (0..est_fast.len()).map(|i| (i % 2) as u16).collect();
    assert!(
        est_fast.estimate(&assign) <= est_slow.estimate(&assign),
        "lower latency should never estimate slower"
    );
}
