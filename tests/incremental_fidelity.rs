//! The hard contract of incremental re-partitioning: after a
//! one-function edit, `mcpart repartition --baseline <checkpoint>`
//! must produce placements, pinned checkpoint records, and stdout
//! byte-identical to a from-scratch run of the edited program — at
//! every `--jobs` count, whether the dirty cone is one function or
//! the whole program.
//!
//! Mutations are applied to the textual IR the way a developer edit
//! lands: rename a temporary (pure spelling change inside one
//! function) or bump one loop trip count (a semantic change that
//! shifts the profile). Both must leave every clean function's replay
//! exact.

use std::path::Path;
use std::process::Command;

fn mcpart(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_mcpart")).args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mcpart_incfid_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Byte range of the last `func ...` region (through its closing `}`).
fn last_func_region(text: &str) -> std::ops::Range<usize> {
    let start = text.rfind("\nfunc ").map(|i| i + 1).unwrap_or(0);
    let end = text[start..].rfind('}').map(|i| start + i).unwrap_or(text.len());
    start..end
}

/// True if the byte before/after makes `text[i..i+len]` a whole token.
fn is_token(text: &str, i: usize, len: usize) -> bool {
    let before_ok =
        i == 0 || !text.as_bytes()[i - 1].is_ascii_alphanumeric() && text.as_bytes()[i - 1] != b'_';
    let after = i + len;
    let after_ok = after >= text.len() || !text.as_bytes()[after].is_ascii_digit();
    before_ok && after_ok
}

/// Renames the highest-numbered `vN` temporary of the last function to
/// `vN+1` (unused, so no capture) — a one-function spelling edit.
fn rename_temp(text: &str) -> String {
    let region = last_func_region(text);
    let body = &text[region.clone()];
    let mut max: Option<u64> = None;
    let mut i = 0;
    while let Some(p) = body[i..].find('v') {
        let at = i + p;
        let digits: String = body[at + 1..].chars().take_while(|c| c.is_ascii_digit()).collect();
        if !digits.is_empty() && is_token(body, at, 1 + digits.len()) {
            let n: u64 = digits.parse().expect("digits");
            max = Some(max.map_or(n, |m| m.max(n)));
        }
        i = at + 1;
    }
    let n = max.expect("function has temporaries");
    let old = format!("v{n}");
    let new = format!("v{}", n + 1);
    let mut out = String::with_capacity(body.len() + 8);
    let mut i = 0;
    while let Some(p) = body[i..].find(&old) {
        let at = i + p;
        out.push_str(&body[i..at]);
        if is_token(body, at, old.len()) {
            out.push_str(&new);
        } else {
            out.push_str(&old);
        }
        i = at + old.len();
    }
    out.push_str(&body[i..]);
    let mut full = String::with_capacity(text.len() + 8);
    full.push_str(&text[..region.start]);
    full.push_str(&out);
    full.push_str(&text[region.end..]);
    full
}

/// Perturbs the trip count of the last function's first counted loop:
/// the second operand of its `icmp.lt` is the bound register; its
/// `= iconst K` definition becomes `K - 1` (down, so loops that index
/// tables sized to the bound stay in bounds).
fn bump_trip_count(text: &str) -> String {
    let region = last_func_region(text);
    let body = &text[region.clone()];
    let cmp = body.find("icmp.lt ").expect("function has a counted loop");
    let operands = &body[cmp + "icmp.lt ".len()..];
    let line_end = operands.find('\n').unwrap_or(operands.len());
    let bound = operands[..line_end].split(", ").nth(1).expect("two operands").trim();
    let def = format!("{bound} = iconst ");
    let at = body.find(&def).expect("bound is a constant");
    let num_start = at + def.len();
    let num_len = body[num_start..].chars().take_while(|c| c.is_ascii_digit()).count();
    assert!(num_len > 0, "bound constant is numeric");
    let k: i64 = body[num_start..num_start + num_len].parse().expect("parses");
    let mut out = String::with_capacity(text.len() + 2);
    out.push_str(&text[..region.start + num_start]);
    out.push_str(&(k - 1).to_string());
    out.push_str(&text[region.start + num_start + num_len..]);
    out
}

/// Shrinks one table-mask constant (`iconst 2^k - 1`) of the last
/// function by one: a value-only edit that keeps every access in
/// bounds and leaves the profile and the GDP homes untouched, so the
/// dirty cone is exactly one function plus its merge neighbourhood.
fn shrink_mask(text: &str) -> String {
    let region = last_func_region(text);
    let body = &text[region.clone()];
    let (at, len, k) = body
        .match_indices("= iconst ")
        .find_map(|(i, m)| {
            let at = i + m.len();
            let len = body[at..].chars().take_while(|c| c.is_ascii_digit()).count();
            let k: i64 = body[at..at + len].parse().ok()?;
            ((63..=511).contains(&k) && (k + 1) & k == 0).then_some((at, len, k))
        })
        .expect("a mask constant to edit");
    format!("{}{}{}", &text[..region.start + at], k - 1, &text[region.start + at + len..])
}

/// Drops the timing/counter lines that legitimately differ between a
/// from-scratch and an incremental run: `partition:` is wall-clock,
/// `repartition:` only exists on the incremental side.
fn pinned_stdout(s: &str) -> String {
    s.lines()
        .filter(|l| !l.starts_with("partition:") && !l.starts_with("repartition:"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Runs the full contract for one program file and one mutation:
/// baseline checkpoint on the original, then at `--jobs 1` and `4` the
/// incremental run of the mutant must match a from-scratch run of the
/// mutant byte-for-byte (checkpoint records, manifests, stdout).
fn assert_incremental_fidelity(dir: &Path, name: &str, original: &str, mutated: &str) {
    let orig_path = dir.join(format!("{name}.mcir"));
    let mut_path = dir.join(format!("{name}.edited.mcir"));
    let base_ck = dir.join(format!("{name}.base.ck"));
    std::fs::write(&orig_path, original).expect("write original");
    std::fs::write(&mut_path, mutated).expect("write mutant");
    let (_, stderr, ok) = mcpart(&[
        "run",
        orig_path.to_str().expect("utf8"),
        "--method",
        "gdp",
        "--checkpoint",
        base_ck.to_str().expect("utf8"),
    ]);
    assert!(ok, "{name}: baseline run failed: {stderr}");

    for jobs in ["1", "4"] {
        let fresh_ck = dir.join(format!("{name}.fresh{jobs}.ck"));
        let inc_ck = dir.join(format!("{name}.inc{jobs}.ck"));
        let (fresh_out, stderr, ok) = mcpart(&[
            "run",
            mut_path.to_str().expect("utf8"),
            "--method",
            "gdp",
            "--jobs",
            jobs,
            "--checkpoint",
            fresh_ck.to_str().expect("utf8"),
        ]);
        assert!(ok, "{name}: from-scratch run failed: {stderr}");
        let (inc_out, stderr, ok) = mcpart(&[
            "repartition",
            mut_path.to_str().expect("utf8"),
            "--baseline",
            base_ck.to_str().expect("utf8"),
            "--jobs",
            jobs,
            "--checkpoint",
            inc_ck.to_str().expect("utf8"),
        ]);
        assert!(ok, "{name}: incremental run failed: {stderr}");
        assert!(
            inc_out.contains("repartition: "),
            "{name}: no repartition summary in stdout:\n{inc_out}"
        );
        assert_eq!(
            pinned_stdout(&fresh_out),
            pinned_stdout(&inc_out),
            "{name} at --jobs {jobs}: stdout diverged"
        );
        let (diff_out, diff_err, ok) = mcpart(&[
            "checkpoint-diff",
            fresh_ck.to_str().expect("utf8"),
            inc_ck.to_str().expect("utf8"),
        ]);
        assert!(
            ok && diff_out.contains("checkpoints match"),
            "{name} at --jobs {jobs}: checkpoints diverged:\n{diff_out}{diff_err}"
        );
    }
}

/// One Mediabench workload: dump its IR, mutate it, check the
/// contract. Mutation kind alternates by index so both edit shapes are
/// exercised across the suite.
fn check_workload(dir: &Path, name: &str, rename: bool) {
    let (text, stderr, ok) = mcpart(&["dump", name]);
    assert!(ok, "{name}: dump failed: {stderr}");
    let mutated = if rename { rename_temp(&text) } else { bump_trip_count(&text) };
    assert_ne!(text, mutated, "{name}: mutation was a no-op");
    assert_incremental_fidelity(dir, name, &text, &mutated);
}

#[test]
fn mediabench_one_function_edits_are_byte_identical_a() {
    let dir = fresh_dir("mb_a");
    for (i, name) in ["cjpeg", "djpeg", "epic", "unepic", "g721encode", "g721decode", "gsmencode"]
        .iter()
        .enumerate()
    {
        check_workload(&dir, name, i % 2 == 0);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mediabench_one_function_edits_are_byte_identical_b() {
    let dir = fresh_dir("mb_b");
    for (i, name) in
        ["gsmdecode", "mpeg2dec", "mpeg2enc", "pegwit", "rawcaudio", "rawdaudio"].iter().enumerate()
    {
        check_workload(&dir, name, i % 2 == 0);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `checkpoint-diff` reports *which* manifest entries changed. Records
/// compare first, so to reach the manifest comparison the two files
/// must agree on every pinned result — we flip one hex digit of one
/// function's content hash and expect a per-function delta line naming
/// the function and the `ir` field, and exit 1.
#[test]
fn checkpoint_diff_names_the_changed_manifest_function() {
    let dir = fresh_dir("mdelta");
    let a = dir.join("a.ck");
    let b = dir.join("b.ck");
    let (_, stderr, ok) = mcpart(&["run", "fir", "--checkpoint", a.to_str().expect("utf8")]);
    assert!(ok, "run failed: {stderr}");
    let text = std::fs::read_to_string(&a).expect("read checkpoint");
    let at = text.find("\"mcpart_manifest\"").expect("manifest line");
    let h = text[at..].find("\"hash\":\"").map(|i| at + i + "\"hash\":\"".len()).expect("a hash");
    let mut bytes = text.into_bytes();
    bytes[h] = if bytes[h] == b'0' { b'1' } else { b'0' };
    std::fs::write(&b, bytes).expect("write perturbed");
    let (_, stderr, ok) =
        mcpart(&["checkpoint-diff", a.to_str().expect("utf8"), b.to_str().expect("utf8")]);
    assert!(!ok, "perturbed manifest hash must not compare clean");
    assert!(
        stderr.contains("manifest `fir/gdp`: 1 delta(s)") && stderr.contains("#0 main: ir changed"),
        "delta report missing or wrong:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn synth_10k_edit_replays_most_functions_and_stays_byte_identical() {
    let dir = fresh_dir("synth");
    let path = dir.join("synth_10k.mcir");
    let (_, stderr, ok) = mcpart(&["gen", "synth_10k", "--out", path.to_str().expect("utf8")]);
    assert!(ok, "gen failed: {stderr}");
    let text = std::fs::read_to_string(&path).expect("read");
    let mutated = shrink_mask(&text);
    assert_ne!(text, mutated);
    assert_incremental_fidelity(&dir, "synth_10k", &text, &mutated);

    // The edit touched one function: most of the program must replay
    // (but not all — the cone is real), and the incremental trace must
    // carry the repartition counters.
    let base_ck = dir.join("synth_10k.base.ck");
    let mut_path = dir.join("synth_10k.edited.mcir");
    let trace = dir.join("inc_trace.json");
    let (stdout, stderr, ok) = mcpart(&[
        "repartition",
        mut_path.to_str().expect("utf8"),
        "--baseline",
        base_ck.to_str().expect("utf8"),
        "--trace-out",
        trace.to_str().expect("utf8"),
    ]);
    assert!(ok, "repartition failed: {stderr}");
    let line =
        stdout.lines().find(|l| l.starts_with("repartition: ")).expect("repartition summary line");
    let replayed: usize = line
        .split(" / ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("replayed count parses");
    let total: usize = line
        .split(" of ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("total count parses");
    assert!(
        total > 10 && replayed * 2 > total && replayed < total,
        "expected a partial cone over {total} functions, got {replayed} replayed: {line}"
    );
    let (stdout, stderr, ok) = mcpart(&[
        "trace-check",
        trace.to_str().expect("utf8"),
        "--require",
        "repartition/replayed_funcs,repartition/dirty_funcs,repartition/cone_frac_x1000",
    ]);
    assert!(ok, "trace-check failed: {stdout}{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
