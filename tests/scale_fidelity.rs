//! Fidelity suite for the flat (CSR) data layouts: the production
//! `ProgramDfg` and the triple-vector `GraphBuilder` must agree with
//! straightforward hash-map reference implementations on every
//! workload, and `--jobs N` must stay bit-identical to `--jobs 1`
//! through the whole GDP stage.

use mcpart::analysis::{AccessInfo, PointsTo};
use mcpart::core::{gdp_partition, GdpConfig, ObjectGroups, ProgramDfg};
use mcpart::ir::{DefUse, Opcode, Profile, Program, Terminator};
use mcpart::machine::Machine;
use mcpart::metis::GraphBuilder;
use std::collections::HashMap;

/// The seed implementation's edge fold: a hash map keyed by node-index
/// pairs with a max-combine, sorted at the end.
fn reference_dfg_edges(program: &Program, profile: &Profile) -> Vec<(usize, usize, u64)> {
    // Node order is (function, op), the same as ProgramDfg.
    let mut index = HashMap::new();
    let mut node_freq = Vec::new();
    for (fid, func) in program.functions.iter() {
        for (oid, _) in func.ops.iter() {
            index.insert((fid, oid), node_freq.len());
            node_freq.push(profile.op_freq(program, fid, oid));
        }
    }
    let mut edge_set: HashMap<(usize, usize), u64> = HashMap::new();
    let add_edge = |from: usize, to: usize, w: u64, set: &mut HashMap<(usize, usize), u64>| {
        let e = set.entry((from, to)).or_insert(0);
        *e = (*e).max(w);
    };
    for (fid, func) in program.functions.iter() {
        let du = DefUse::compute(func);
        for v in 0..func.num_vregs {
            let v = mcpart::ir::VReg(v as u32);
            for &def in &du.defs[v] {
                for &usage in &du.uses[v] {
                    if def == usage {
                        continue;
                    }
                    let from = index[&(fid, def)];
                    let to = index[&(fid, usage)];
                    add_edge(from, to, node_freq[to].max(1), &mut edge_set);
                }
            }
        }
        for (oid, op) in func.ops.iter() {
            if let Opcode::Call(callee) = op.opcode {
                let call_idx = index[&(fid, oid)];
                let cf = &program.functions[callee];
                let cdu = DefUse::compute(cf);
                for &param in &cf.params {
                    for &usage in &cdu.uses[param] {
                        let to = index[&(callee, usage)];
                        add_edge(call_idx, to, node_freq[to].max(1), &mut edge_set);
                    }
                }
                for block in cf.blocks.values() {
                    if let Some(Terminator::Return(Some(v))) = &block.term {
                        for &def in &cdu.defs[*v] {
                            let from = index[&(callee, def)];
                            add_edge(from, call_idx, node_freq[call_idx].max(1), &mut edge_set);
                        }
                    }
                }
            }
        }
    }
    let mut edges: Vec<(usize, usize, u64)> =
        edge_set.into_iter().map(|((f, t), w)| (f, t, w)).collect();
    edges.sort_unstable();
    edges
}

/// Every workload's CSR DFG matches the hash-map reference edge fold,
/// at jobs 1 and jobs 4.
#[test]
fn csr_dfg_matches_reference_on_all_workloads() {
    for w in mcpart::workloads::all() {
        let reference = reference_dfg_edges(&w.program, &w.profile);
        for jobs in [1usize, 4] {
            let dfg = ProgramDfg::build_with_jobs(&w.program, &w.profile, jobs);
            let got: Vec<(usize, usize, u64)> = dfg.edges().collect();
            assert_eq!(got, reference, "{} (jobs={jobs})", w.name);
            assert_eq!(dfg.num_edges(), reference.len(), "{}", w.name);
            // index_of agrees with node order.
            for (i, node) in dfg.nodes.iter().enumerate() {
                assert_eq!(dfg.index_of(node.func, node.op), i, "{}", w.name);
            }
        }
    }
}

/// The triple-vector GraphBuilder matches a hash-map reference
/// (sum-combined undirected edges) on randomized inputs, for every jobs
/// level.
#[test]
fn graph_builder_matches_reference_merge() {
    let mut state = 0x5ca1ab1eu64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    for case in 0..8 {
        let n = 40 + (next() % 160) as usize;
        let edges: Vec<(u32, u32, u64)> = (0..(next() % 2000))
            .map(|_| (next() as u32 % n as u32, next() as u32 % n as u32, next() % 50))
            .collect();
        // Reference: canonicalized key, sum combine, skip self-loops
        // and zero weights — the documented GraphBuilder semantics.
        let mut reference: HashMap<(u32, u32), u64> = HashMap::new();
        for &(a, b, w) in &edges {
            if a != b && w > 0 {
                *reference.entry((a.min(b), a.max(b))).or_insert(0) += w;
            }
        }
        for jobs in [1usize, 2, 4] {
            let mut b = GraphBuilder::new(1);
            for _ in 0..n {
                b.add_vertex(&[1]);
            }
            for &(x, y, w) in &edges {
                b.add_edge(x, y, w);
            }
            let g = b.build_with_jobs(jobs);
            let mut got: HashMap<(u32, u32), u64> = HashMap::new();
            for v in 0..n as u32 {
                for (u, w) in g.neighbors(v) {
                    if u > v {
                        got.insert((v, u), w);
                    }
                }
            }
            assert_eq!(got, reference, "case {case} jobs {jobs}");
        }
    }
}

/// Flat `part_weights` agrees with a per-part recount from the
/// assignment.
#[test]
fn flat_part_weights_match_recount() {
    let w = mcpart::workloads::by_name("fir").expect("workload");
    let dfg = ProgramDfg::build(&w.program, &w.profile);
    let mut b = GraphBuilder::new(1);
    for i in 0..dfg.len() {
        b.add_vertex(&[dfg.node_freq[i].max(1)]);
    }
    for (from, to, weight) in dfg.edges() {
        b.add_edge(from as u32, to as u32, weight);
    }
    let g = b.build();
    let assignment: Vec<u32> = (0..dfg.len() as u32).map(|v| v % 3).collect();
    let pw = g.part_weights(&assignment, 3);
    assert_eq!(pw.len(), 3);
    for p in 0..3u32 {
        let expected: u64 =
            (0..dfg.len()).filter(|&v| assignment[v] == p).map(|v| dfg.node_freq[v].max(1)).sum();
        assert_eq!(pw[p as usize], expected, "part {p}");
    }
}

/// GDP end-to-end: `--jobs 4` produces the bit-identical DataPartition
/// of `--jobs 1` on every workload (the PR 2 determinism contract
/// extended through the sharded coarsener and parallel DFG build).
#[test]
fn gdp_jobs_identity_on_all_workloads() {
    let machine = Machine::paper_2cluster(5);
    for w in mcpart::workloads::all() {
        let pts = PointsTo::compute(&w.program);
        let access = AccessInfo::compute(&w.program, &pts, &w.profile);
        let groups = ObjectGroups::compute(&w.program, &access);
        let run = |jobs: usize| {
            let cfg = GdpConfig { jobs, ..GdpConfig::default() };
            gdp_partition(&w.program, &w.profile, &access, &groups, &machine, &cfg)
                .expect("gdp partition")
        };
        let seq = run(1);
        assert_eq!(run(4), seq, "{}: jobs=4 diverged from jobs=1", w.name);
    }
}

/// A mid-sized synthetic program also survives the jobs-identity check
/// (its graph crosses the parallel sort and sharded-matching
/// thresholds, unlike the paper workloads).
#[test]
fn gdp_jobs_identity_on_synth() {
    let w = mcpart::workloads::synth("ops=20000,trips=16,seed=42").expect("synth");
    let machine = Machine::paper_2cluster(5);
    let pts = PointsTo::compute(&w.program);
    let access = AccessInfo::compute(&w.program, &pts, &w.profile);
    let groups = ObjectGroups::compute(&w.program, &access);
    let run = |jobs: usize| {
        let cfg = GdpConfig { jobs, ..GdpConfig::default() };
        gdp_partition(&w.program, &w.profile, &access, &groups, &machine, &cfg)
            .expect("gdp partition")
    };
    let seq = run(1);
    for jobs in [2usize, 4, 8] {
        assert_eq!(run(jobs), seq, "jobs={jobs} diverged");
    }
}
