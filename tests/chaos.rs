//! Acceptance tests for `mcpart chaos`: the seeded soak harness with
//! its independent placement oracle. Each test drives the real binary
//! (or the library property surface) and asserts on the contract the
//! harness advertises: bit-identical determinism, jobs-invariance,
//! zero oracle violations on clean code, and a closed loop from an
//! injected bug to a shrunk repro that replays from the corpus.

use mcpart::core::{check_result, run_pipeline, Method, PipelineConfig};
use mcpart::machine::SweepMatrix;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn mcpart_cli(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_mcpart")).args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

/// A fresh private scratch directory for one test.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcpart_chaos_test_{test}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Acceptance: the soak is a pure function of its seed — two runs of
/// the same command produce byte-identical stdout, including every
/// per-scenario verdict folded into the summary line.
#[test]
fn same_seed_soaks_are_byte_identical() {
    let (a, stderr, code) = mcpart_cli(&["chaos", "40", "--seed", "5", "--metrics"]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    let (b, _, code) = mcpart_cli(&["chaos", "40", "--seed", "5", "--metrics"]);
    assert_eq!(code, Some(0));
    assert_eq!(a, b, "same seed must reproduce the soak byte-for-byte");
    assert!(a.contains("chaos: 40 scenario(s)"), "{a}");
    assert!(a.contains("0 failure(s)"), "clean code must pass the oracle: {a}");
}

/// Acceptance: the worker count used for the jobs-invariance re-run
/// never changes what the soak reports.
#[test]
fn soak_output_is_invariant_across_jobs_counts() {
    let (j1, stderr, code) = mcpart_cli(&["chaos", "30", "--seed", "9", "--jobs", "1"]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    let (j4, _, code) = mcpart_cli(&["chaos", "30", "--seed", "9", "--jobs", "4"]);
    assert_eq!(code, Some(0));
    assert_eq!(j1, j4, "--jobs must never change results");
}

/// Acceptance: a longer seeded soak over the built-in sweep matrix
/// (clusters 1..8, degenerate FU mixes, all topologies and memory
/// models, composed fault plans) finds zero oracle violations.
#[test]
fn seeded_soak_finds_zero_oracle_violations() {
    let (stdout, stderr, code) = mcpart_cli(&["chaos", "60", "--seed", "20260807"]);
    assert_eq!(code, Some(0), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("chaos: 60 scenario(s)"), "{stdout}");
    assert!(stdout.contains("0 failure(s)"), "oracle violation on clean code: {stdout}");
}

/// Acceptance: an injected oracle-violating bug (the test-only
/// `--inject-bad-placement` hook) is caught, shrunk, written to the
/// corpus, and the repro file replays to the same failure — while the
/// same repro replays clean without the injection.
#[test]
fn injected_bug_is_caught_shrunk_and_replays_from_the_corpus() {
    let corpus = scratch("corpus");
    let corpus_str = corpus.to_str().expect("utf8 path");
    let (stdout, _, code) = mcpart_cli(&[
        "chaos",
        "2",
        "--seed",
        "3",
        "--inject-bad-placement",
        "--corpus",
        corpus_str,
    ]);
    assert_eq!(code, Some(1), "injected bugs must fail the soak: {stdout}");
    assert!(stdout.contains("failure 0: oracle-failure"), "{stdout}");
    assert!(stdout.contains("shrink step(s)"), "{stdout}");
    assert!(stdout.contains("repro written:"), "{stdout}");

    let mut repros: Vec<PathBuf> =
        fs::read_dir(&corpus).expect("corpus dir").map(|e| e.expect("entry").path()).collect();
    repros.sort();
    assert!(!repros.is_empty(), "no repro files in the corpus");
    let repro = repros[0].to_str().expect("utf8 path");

    // With the bug injected, the repro reproduces the oracle failure.
    let (stdout, _, code) = mcpart_cli(&["chaos", "--replay", repro, "--inject-bad-placement"]);
    assert_eq!(code, Some(1), "repro must reproduce: {stdout}");
    assert!(stdout.contains("oracle-failure"), "{stdout}");
    // Without it, the same scenario passes: the bug, not the scenario,
    // was at fault.
    let (stdout, stderr, code) = mcpart_cli(&["chaos", "--replay", repro]);
    assert_eq!(code, Some(0), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains(": pass"), "{stdout}");
    let _ = fs::remove_dir_all(&corpus);
}

/// The `chaos/*` counters reach a trace and satisfy
/// `trace-check --require`.
#[test]
fn chaos_counters_survive_trace_check_require() {
    let dir = scratch("trace");
    let trace = dir.join("chaos-trace.json");
    let trace_str = trace.to_str().expect("utf8 path");
    let (_, stderr, code) = mcpart_cli(&["chaos", "10", "--seed", "2", "--trace-out", trace_str]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    let (stdout, stderr, code) = mcpart_cli(&[
        "trace-check",
        trace_str,
        "--require",
        "chaos/scenarios=10,chaos/failures=0,chaos/shrink_steps,chaos/oracle_checks",
    ]);
    assert_eq!(code, Some(0), "stdout: {stdout}\nstderr: {stderr}");
    let _ = fs::remove_dir_all(&dir);
}

/// A malformed sweep-matrix file is a configuration error: exit 2 with
/// a diagnostic carrying the line and column.
#[test]
fn malformed_sweep_file_exits_2_with_line_and_column() {
    let dir = scratch("bad_sweep");
    let path = dir.join("bad.sweep");
    fs::write(&path, "clusters = [2, 4]\nlatency = [1, oops]\n").expect("write sweep");
    let (_, stderr, code) =
        mcpart_cli(&["chaos", "5", "--sweep", path.to_str().expect("utf8 path")]);
    assert_eq!(code, Some(2), "malformed sweep must exit 2: {stderr}");
    assert!(stderr.contains("sweep line 2, column"), "no line/column diagnostic: {stderr}");
    let _ = fs::remove_dir_all(&dir);
}

/// A valid user sweep file replaces the built-in matrix and the soak
/// still runs clean over it.
#[test]
fn custom_sweep_file_drives_the_soak() {
    let dir = scratch("custom_sweep");
    let path = dir.join("tiny.sweep");
    fs::write(
        &path,
        "# a deliberately small matrix\n\
         clusters = [1, 3]\n\
         latency = [2]\n\
         topology = [\"ring\", \"mesh\"]\n\
         memory = [\"partitioned\", \"coherent:4\"]\n",
    )
    .expect("write sweep");
    let (stdout, stderr, code) =
        mcpart_cli(&["chaos", "20", "--seed", "13", "--sweep", path.to_str().expect("utf8 path")]);
    assert_eq!(code, Some(0), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("0 failure(s)"), "{stdout}");
    let _ = fs::remove_dir_all(&dir);
}

/// Property (satellite): across sweep machines, combined fault plans,
/// and worker counts 1 and 4, the degradation ladder always terminates
/// in either a placement the independent oracle accepts or a typed
/// error — never a panic, never an unsound downgrade chain.
#[test]
fn ladder_terminates_valid_or_typed_under_combined_faults_at_both_jobs_counts() {
    let sweep = SweepMatrix::parse(
        "clusters = [1, 2, 8]\n\
         latency = [5]\n\
         topology = [\"bus\", \"mesh\"]\n\
         mix = [\"2/1/1/1\", \"1/0/1/1\"]\n\
         memory = [\"partitioned\", \"unified\"]\n",
    )
    .expect("sweep parses");
    let w = mcpart::workloads::by_name("fir").expect("known benchmark");
    let exec = mcpart::sim::ExecConfig::default();
    // Fault plans that push the ladder through every rung: no faults,
    // GDP fuel exhaustion, estimator starvation, and both at once with
    // an injected partitioner panic.
    let plans: [(&str, Option<u64>, Option<u64>, bool); 4] = [
        ("clean", None, None, false),
        ("fuel", Some(0), None, false),
        ("estimator", None, Some(1), false),
        ("everything", Some(0), Some(1), true),
    ];
    for point in sweep.expand() {
        let machine = point.machine();
        for (label, fuel, estimator, panic) in plans {
            for jobs in [1usize, 4] {
                let mut cfg = PipelineConfig::new(Method::Gdp).with_jobs(jobs);
                cfg.gdp.fuel = fuel;
                cfg.rhop.max_estimator_calls = estimator;
                if panic {
                    cfg.rhop.inject_panic =
                        Some(mcpart::core::PanicPlan { func: "main".to_string(), panics: 1 });
                }
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_pipeline(&w.program, &w.profile, &machine, &cfg)
                }));
                let ctx = format!("{point} plan={label} jobs={jobs}");
                match caught {
                    Err(_) => panic!("{ctx}: pipeline panicked"),
                    Ok(Err(e)) => {
                        assert!(!e.to_string().is_empty(), "{ctx}: untyped error");
                    }
                    Ok(Ok(result)) => {
                        let report = check_result(&w.program, &w.profile, &machine, &result, exec);
                        assert!(
                            report.passed(),
                            "{ctx}: oracle rejected the ladder's placement:\n{report}"
                        );
                    }
                }
            }
        }
    }
}

/// The serve spool and the chaos corpus compose: a repro written by one
/// soak replays identically on a machine loaded from the same sweep
/// grammar the corpus scenario names.
#[test]
fn repro_files_roundtrip_through_parse_and_display() {
    let corpus = scratch("roundtrip");
    let corpus_str = corpus.to_str().expect("utf8 path");
    let (_, _, code) = mcpart_cli(&[
        "chaos",
        "1",
        "--seed",
        "3",
        "--inject-bad-placement",
        "--no-shrink",
        "--corpus",
        corpus_str,
    ]);
    assert_eq!(code, Some(1));
    let repro = fs::read_dir(&corpus)
        .expect("corpus dir")
        .next()
        .expect("one repro")
        .expect("entry")
        .path();
    let text = fs::read_to_string(&repro).expect("repro reads");
    let scenario = mcpart::core::Scenario::parse(&text).expect("repro grammar parses");
    let reparsed = mcpart::core::Scenario::parse(&scenario.to_string()).expect("display reparses");
    assert_eq!(scenario, reparsed, "scenario grammar must roundtrip");
    assert!(Path::new(&repro).exists());
    let _ = fs::remove_dir_all(&corpus);
}
