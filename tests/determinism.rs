//! Parallel determinism: `--jobs N` must reproduce `--jobs 1` exactly.
//!
//! The partitioning pipeline fans out per function (RHOP), per METIS
//! restart (GDP) and per workload (the experiment harness), all under
//! the `mcpart-par` contract: per-task RNG streams and input-order
//! reduction. These tests pin the observable consequence — placements,
//! schedule estimates, downgrade records and work counters are
//! bit-identical at every worker count — on every bundled workload.

use mcpart::core::{run_pipeline, Method, PipelineConfig, PipelineResult};
use mcpart::machine::Machine;

fn run_with_jobs(w: &mcpart::workloads::Workload, method: Method, jobs: usize) -> PipelineResult {
    let machine = Machine::paper_2cluster(5);
    let cfg = PipelineConfig::new(method).with_jobs(jobs);
    run_pipeline(&w.program, &w.profile, &machine, &cfg).expect("pipeline")
}

/// Asserts the observable pipeline outputs are identical between runs.
fn assert_same(name: &str, method: Method, a: &PipelineResult, b: &PipelineResult) {
    let ctx = format!("{name}/{method}");
    assert_eq!(a.placement.op_cluster, b.placement.op_cluster, "{ctx}: op placements differ");
    assert_eq!(a.placement.object_home, b.placement.object_home, "{ctx}: object homes differ");
    assert_eq!(a.cycles(), b.cycles(), "{ctx}: schedule estimates differ");
    assert_eq!(a.dynamic_moves(), b.dynamic_moves(), "{ctx}: move traffic differs");
    assert_eq!(a.downgrades, b.downgrades, "{ctx}: downgrade records differ");
    assert_eq!(a.method, b.method, "{ctx}: resolved method differs");
    assert_eq!(a.rhop_stats, b.rhop_stats, "{ctx}: RHOP work counters differ");
    assert_eq!(a.data_bytes, b.data_bytes, "{ctx}: data distribution differs");
}

#[test]
fn gdp_is_identical_across_worker_counts_on_every_workload() {
    for w in mcpart::workloads::all() {
        let seq = run_with_jobs(&w, Method::Gdp, 1);
        let par = run_with_jobs(&w, Method::Gdp, 8);
        assert_same(&w.name, Method::Gdp, &seq, &par);
    }
}

#[test]
fn every_method_is_identical_across_worker_counts() {
    // The non-GDP methods exercise different RHOP lock patterns; a
    // couple of mid-sized workloads cover them without an hour of
    // debug-build runtime.
    for name in ["rawcaudio", "fft"] {
        let w = mcpart::workloads::by_name(name).expect("bundled workload");
        for method in Method::ALL {
            let seq = run_with_jobs(&w, method, 1);
            let par = run_with_jobs(&w, method, 8);
            assert_same(&w.name, method, &seq, &par);
        }
    }
}

#[test]
fn auto_jobs_matches_sequential() {
    // jobs = 0 resolves to the host parallelism; results must not
    // depend on what that happens to be.
    let w = mcpart::workloads::by_name("rawcaudio").expect("bundled workload");
    let seq = run_with_jobs(&w, Method::Gdp, 1);
    let auto = run_with_jobs(&w, Method::Gdp, 0);
    assert_same(&w.name, Method::Gdp, &seq, &auto);
}

#[test]
fn downgrade_records_are_identical_across_worker_counts() {
    // Starve GDP's refinement fuel so the degradation ladder fires
    // (GDP -> Profile Max), and check the recorded ladder is the same
    // at every worker count.
    let w = mcpart::workloads::by_name("rawcaudio").expect("bundled workload");
    let machine = Machine::paper_2cluster(5);
    let run = |jobs: usize| {
        let mut cfg = PipelineConfig::new(Method::Gdp).with_jobs(jobs);
        cfg.gdp.fuel = Some(0);
        run_pipeline(&w.program, &w.profile, &machine, &cfg).expect("pipeline")
    };
    let seq = run(1);
    assert!(seq.was_downgraded(), "zero GDP fuel must trip the ladder");
    for jobs in [2, 8] {
        let par = run(jobs);
        assert_same(&w.name, Method::Gdp, &seq, &par);
    }
}

#[test]
fn obs_event_log_is_identical_across_worker_counts() {
    // The pinned event log (sequence, categories, names, kinds, args —
    // everything except wall-clock timestamps) must be byte-identical
    // at every worker count: worker buffers are flushed in input order,
    // never in completion order.
    let w = mcpart::workloads::by_name("rawcaudio").expect("bundled workload");
    let machine = Machine::paper_2cluster(5);
    let run = |jobs: usize| {
        let obs = mcpart::obs::Obs::enabled();
        let cfg = PipelineConfig::new(Method::Gdp).with_jobs(jobs).with_obs(obs.clone());
        run_pipeline(&w.program, &w.profile, &machine, &cfg).expect("pipeline");
        obs.pinned_log()
    };
    let seq = run(1);
    assert!(!seq.is_empty(), "an enabled sink must record events");
    for stage in ["gdp/dfg", "pipeline/merge", "metis/partition", "rhop/partition", "pipeline/sim"]
    {
        assert!(seq.contains(stage), "event log must cover stage {stage}:\n{seq}");
    }
    let par = run(8);
    assert_eq!(seq, par, "pinned event log differs between jobs=1 and jobs=8");
}

#[test]
fn obs_event_log_on_failed_runs_is_identical_across_worker_counts() {
    // On a budget-exhaustion failure, which function trips the budget
    // first depends on thread interleaving — so RHOP worker events are
    // withheld entirely and the surviving log must still be identical.
    let w = mcpart::workloads::by_name("rawcaudio").expect("bundled workload");
    let machine = Machine::paper_2cluster(5);
    let run = |jobs: usize| {
        let obs = mcpart::obs::Obs::enabled();
        let mut cfg = PipelineConfig::new(Method::Gdp).with_jobs(jobs).with_obs(obs.clone());
        cfg.rhop.max_estimator_calls = Some(3);
        run_pipeline(&w.program, &w.profile, &machine, &cfg)
            .expect_err("a 3-call budget cannot finish any rung");
        obs.pinned_log()
    };
    let seq = run(1);
    for jobs in [2, 8] {
        assert_eq!(seq, run(jobs), "jobs={jobs}: pinned event log differs on the error path");
    }
}

#[test]
fn pinned_histogram_payload_is_identical_across_worker_counts() {
    // The metrics layer folds the event stream into histograms; the
    // pinned (work-denominated) subset must be byte-identical at every
    // worker count, exactly like the pinned event log it derives from.
    // Wall-clock histograms are explicitly excluded from the payload.
    let w = mcpart::workloads::by_name("rawcaudio").expect("bundled workload");
    let machine = Machine::paper_2cluster(5);
    let run = |jobs: usize| {
        let obs = mcpart::obs::Obs::enabled();
        let cfg = PipelineConfig::new(Method::Gdp).with_jobs(jobs).with_obs(obs.clone());
        run_pipeline(&w.program, &w.profile, &machine, &cfg).expect("pipeline");
        mcpart::obs::metrics::MetricsRegistry::from_events(&obs.events()).pinned_json()
    };
    let seq = run(1);
    for label in ["gdp/cut", "rhop/estimator_calls", "sim/cycles"] {
        assert!(seq.contains(label), "pinned payload must cover {label}:\n{seq}");
    }
    for jobs in [4, 8] {
        assert_eq!(seq, run(jobs), "pinned histograms differ between jobs=1 and jobs={jobs}");
    }
}

#[test]
fn budget_exhaustion_error_is_identical_across_worker_counts() {
    // When the shared estimator budget kills every rung, even the
    // surfaced error must be the same at every worker count: the
    // exceeded outcome depends only on total demand, not scheduling.
    let w = mcpart::workloads::by_name("rawcaudio").expect("bundled workload");
    let machine = Machine::paper_2cluster(5);
    let run = |jobs: usize| {
        let mut cfg = PipelineConfig::new(Method::Gdp).with_jobs(jobs);
        cfg.rhop.max_estimator_calls = Some(3);
        run_pipeline(&w.program, &w.profile, &machine, &cfg)
            .expect_err("a 3-call budget cannot finish any rung")
    };
    let seq = run(1);
    for jobs in [2, 8] {
        let par = run(jobs);
        assert_eq!(seq.method, par.method, "jobs={jobs}: error rung differs");
        assert_eq!(seq.stage, par.stage, "jobs={jobs}: error stage differs");
        assert_eq!(seq.to_string(), par.to_string(), "jobs={jobs}: rendered error differs");
    }
}
