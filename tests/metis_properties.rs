//! Property-based tests for the multilevel graph partitioner, driven by
//! a deterministic seeded PRNG so every run explores the same inputs.

use mcpart::metis::{
    coarsen_once, default_max_vwgt, partition, BalanceModel, Graph, GraphBuilder, PartitionConfig,
};
use mcpart::rng::prelude::*;

/// Builds a random connected graph: `n` vertices, cyclic weights, extra
/// edges over a spanning path.
fn build_graph(n: usize, weights: &[u64], extra_edges: &[(usize, usize, u64)]) -> Graph {
    let mut b = GraphBuilder::new(1);
    for i in 0..n {
        b.add_vertex(&[weights[i % weights.len()].max(1)]);
    }
    for i in 1..n {
        b.add_edge(i as u32 - 1, i as u32, 1);
    }
    for &(a, bb, w) in extra_edges {
        b.add_edge((a % n) as u32, (bb % n) as u32, w % 16 + 1);
    }
    b.build()
}

fn gen_weights(rng: &mut SmallRng, lo: u64, hi: u64, max_len: usize) -> Vec<u64> {
    let len = rng.gen_range(1..max_len);
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

fn gen_edges(
    rng: &mut SmallRng,
    max_idx: usize,
    max_w: u64,
    max_len: usize,
) -> Vec<(usize, usize, u64)> {
    let len = rng.gen_range(0..max_len);
    (0..len)
        .map(|_| (rng.gen_range(0..max_idx), rng.gen_range(0..max_idx), rng.gen_range(0..max_w)))
        .collect()
}

/// Any partition result covers every vertex with a valid part index and
/// reports a consistent cut and part weights.
#[test]
fn partition_is_well_formed() {
    for case in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(0xA11 ^ case);
        let n = rng.gen_range(2..120usize);
        let nparts = rng.gen_range(2..5usize);
        let weights = gen_weights(&mut rng, 1, 50, 8);
        let edges = gen_edges(&mut rng, 200, 100, 200);
        let seed = rng.gen_range(0..1_000_000u64);
        let g = build_graph(n, &weights, &edges);
        let cfg = PartitionConfig::new(nparts).with_seed(seed);
        let result = partition(&g, &cfg).expect("partition");
        assert_eq!(result.assignment.len(), n, "case {case}");
        assert!(result.assignment.iter().all(|&p| (p as usize) < nparts), "case {case}");
        assert_eq!(result.cut, g.edge_cut(&result.assignment), "case {case}");
        assert_eq!(&result.part_weights, &g.part_weights(&result.assignment, nparts));
        // Total weight is conserved (ncon = 1, so the flat buffer is
        // one entry per part).
        let total: u64 = result.part_weights.iter().sum();
        assert_eq!(total, g.total_weights()[0], "case {case}");
    }
}

/// Coarsening conserves total vertex weight and maps every fine vertex
/// to a valid coarse vertex.
#[test]
fn coarsening_conserves_weight() {
    for case in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0A ^ case);
        let n = rng.gen_range(4..150usize);
        let weights = gen_weights(&mut rng, 1, 20, 6);
        let edges = gen_edges(&mut rng, 200, 20, 250);
        let jobs = rng.gen_range(1..5usize);
        let g = build_graph(n, &weights, &edges);
        let mut ws = mcpart::metis::CoarsenWorkspace::default();
        if let Some(level) = coarsen_once(&g, &default_max_vwgt(&g, 4), jobs, &mut ws) {
            assert_eq!(level.graph.total_weights(), g.total_weights(), "case {case}");
            assert_eq!(level.map.len(), n, "case {case}");
            let coarse_n = level.graph.num_vertices();
            assert!(level.map.iter().all(|&c| (c as usize) < coarse_n), "case {case}");
            assert!(coarse_n < n, "case {case}");
            // Cut of any projected partition is identical on both levels.
            let coarse_assign: Vec<u32> = (0..coarse_n).map(|i| (i % 2) as u32).collect();
            let fine_assign: Vec<u32> =
                level.map.iter().map(|&c| coarse_assign[c as usize]).collect();
            assert_eq!(
                level.graph.edge_cut(&coarse_assign),
                g.edge_cut(&fine_assign),
                "case {case}"
            );
        }
    }
}

/// With generous imbalance, bisections of uniform graphs are balanced.
#[test]
fn uniform_bisection_is_balanced() {
    for case in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(0xB15 ^ case);
        let n = rng.gen_range(8..100usize);
        let edges = gen_edges(&mut rng, 200, 10, 120);
        let seed = rng.gen_range(0..1_000_000u64);
        let g = build_graph(n, &[1], &edges);
        let cfg = PartitionConfig::new(2).with_seed(seed).with_imbalance(0.2);
        let result = partition(&g, &cfg).expect("partition");
        let balance = BalanceModel::uniform(&g, 2, 0.2);
        assert!(
            balance.is_balanced(&result.part_weights),
            "case {case}: weights {:?}",
            result.part_weights
        );
    }
}

/// Determinism: equal seeds give equal results.
#[test]
fn partition_deterministic() {
    for case in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(0xDE7 ^ case);
        let n = rng.gen_range(2..80usize);
        let edges = gen_edges(&mut rng, 100, 10, 100);
        let seed = rng.gen_range(0..1_000_000u64);
        let g = build_graph(n, &[1, 3], &edges);
        let cfg = PartitionConfig::new(2).with_seed(seed);
        let a = partition(&g, &cfg).expect("partition");
        let b = partition(&g, &cfg).expect("partition");
        assert_eq!(a.assignment, b.assignment, "case {case}");
    }
}

/// An exhausted refinement budget is a typed error, not a panic or a
/// hang, for any graph with at least two vertices.
#[test]
fn starved_fuel_is_a_typed_error() {
    for case in 0..8u64 {
        let mut rng = SmallRng::seed_from_u64(0xF0E1 ^ case);
        let n = rng.gen_range(2..60usize);
        let edges = gen_edges(&mut rng, 100, 10, 60);
        let g = build_graph(n, &[1], &edges);
        let cfg = PartitionConfig::new(2).with_fuel(Some(0));
        let e = partition(&g, &cfg).expect_err("zero fuel must fail");
        assert!(matches!(e, mcpart::metis::MetisError::BudgetExceeded { .. }), "case {case}: {e}");
    }
}

/// The partitioner beats a naive half-split on a structured graph: two
/// densely connected communities joined by a single edge.
#[test]
fn communities_are_separated() {
    let mut b = GraphBuilder::new(1);
    let k = 20;
    for _ in 0..2 * k {
        b.add_vertex(&[1]);
    }
    for i in 0..k as u32 {
        for j in (i + 1)..k as u32 {
            b.add_edge(i, j, 2);
            b.add_edge(i + k as u32, j + k as u32, 2);
        }
    }
    b.add_edge(0, k as u32, 1);
    let g = b.build();
    let result = partition(&g, &PartitionConfig::new(2)).expect("partition");
    assert_eq!(result.cut, 1, "only the bridge should be cut");
}
