//! Property-based tests for the multilevel graph partitioner.

use mcpart::metis::{
    coarsen_once, default_max_vwgt, partition, BalanceModel, Graph, GraphBuilder,
    PartitionConfig,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Builds a random connected graph from a proptest plan: `n` vertices,
/// extra edges over a spanning path.
fn build_graph(n: usize, weights: &[u64], extra_edges: &[(usize, usize, u64)]) -> Graph {
    let mut b = GraphBuilder::new(1);
    for i in 0..n {
        b.add_vertex(&[weights[i % weights.len()].max(1)]);
    }
    for i in 1..n {
        b.add_edge(i as u32 - 1, i as u32, 1);
    }
    for &(a, bb, w) in extra_edges {
        b.add_edge((a % n) as u32, (bb % n) as u32, w % 16 + 1);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any partition result covers every vertex with a valid part index
    /// and reports a consistent cut and part weights.
    #[test]
    fn partition_is_well_formed(
        n in 2usize..120,
        nparts in 2usize..5,
        weights in prop::collection::vec(1u64..50, 1..8),
        edges in prop::collection::vec((0usize..200, 0usize..200, 0u64..100), 0..200),
        seed in 0u64..1_000_000,
    ) {
        let g = build_graph(n, &weights, &edges);
        let cfg = PartitionConfig::new(nparts).with_seed(seed);
        let result = partition(&g, &cfg);
        prop_assert_eq!(result.assignment.len(), n);
        prop_assert!(result.assignment.iter().all(|&p| (p as usize) < nparts));
        prop_assert_eq!(result.cut, g.edge_cut(&result.assignment));
        prop_assert_eq!(&result.part_weights, &g.part_weights(&result.assignment, nparts));
        // Total weight is conserved.
        let total: u64 = result.part_weights.iter().map(|p| p[0]).sum();
        prop_assert_eq!(total, g.total_weights()[0]);
    }

    /// Coarsening conserves total vertex weight and maps every fine
    /// vertex to a valid coarse vertex.
    #[test]
    fn coarsening_conserves_weight(
        n in 4usize..150,
        weights in prop::collection::vec(1u64..20, 1..6),
        edges in prop::collection::vec((0usize..200, 0usize..200, 0u64..20), 0..250),
        seed in 0u64..1_000_000,
    ) {
        let g = build_graph(n, &weights, &edges);
        let mut rng = SmallRng::seed_from_u64(seed);
        if let Some(level) = coarsen_once(&g, &default_max_vwgt(&g, 4), &mut rng) {
            prop_assert_eq!(level.graph.total_weights(), g.total_weights());
            prop_assert_eq!(level.map.len(), n);
            let coarse_n = level.graph.num_vertices();
            prop_assert!(level.map.iter().all(|&c| (c as usize) < coarse_n));
            prop_assert!(coarse_n < n);
            // Cut of any projected partition is identical on both levels.
            let coarse_assign: Vec<u32> =
                (0..coarse_n).map(|i| (i % 2) as u32).collect();
            let fine_assign: Vec<u32> =
                level.map.iter().map(|&c| coarse_assign[c as usize]).collect();
            prop_assert_eq!(
                level.graph.edge_cut(&coarse_assign),
                g.edge_cut(&fine_assign)
            );
        }
    }

    /// With generous imbalance, bisections of uniform graphs are
    /// balanced.
    #[test]
    fn uniform_bisection_is_balanced(
        n in 8usize..100,
        edges in prop::collection::vec((0usize..200, 0usize..200, 0u64..10), 0..120),
        seed in 0u64..1_000_000,
    ) {
        let g = build_graph(n, &[1], &edges);
        let cfg = PartitionConfig::new(2).with_seed(seed).with_imbalance(0.2);
        let result = partition(&g, &cfg);
        let balance = BalanceModel::uniform(&g, 2, 0.2);
        prop_assert!(
            balance.is_balanced(&result.part_weights),
            "weights {:?}", result.part_weights
        );
    }

    /// Determinism: equal seeds give equal results.
    #[test]
    fn partition_deterministic(
        n in 2usize..80,
        edges in prop::collection::vec((0usize..100, 0usize..100, 0u64..10), 0..100),
        seed in 0u64..1_000_000,
    ) {
        let g = build_graph(n, &[1, 3], &edges);
        let cfg = PartitionConfig::new(2).with_seed(seed);
        let a = partition(&g, &cfg);
        let b = partition(&g, &cfg);
        prop_assert_eq!(a.assignment, b.assignment);
    }
}

/// The partitioner beats a naive half-split on a structured graph: two
/// densely connected communities joined by a single edge.
#[test]
fn communities_are_separated() {
    let mut b = GraphBuilder::new(1);
    let k = 20;
    for _ in 0..2 * k {
        b.add_vertex(&[1]);
    }
    for i in 0..k as u32 {
        for j in (i + 1)..k as u32 {
            b.add_edge(i, j, 2);
            b.add_edge(i + k as u32, j + k as u32, 2);
        }
    }
    b.add_edge(0, k as u32, 1);
    let g = b.build();
    let result = partition(&g, &PartitionConfig::new(2));
    assert_eq!(result.cut, 1, "only the bridge should be cut");
}
