//! Property-based semantic preservation: arbitrary cluster placements,
//! after normalization and move insertion, never change program
//! behaviour.

use mcpart::analysis::{AccessInfo, PointsTo};
use mcpart::ir::{ClusterId, EntityId, Profile};
use mcpart::machine::Machine;
use mcpart::rng::rngs::SmallRng;
use mcpart::rng::{Rng, SeedableRng};
use mcpart::sched::{insert_moves, normalize_placement, Placement};
use mcpart::sim::{semantically_equivalent, ExecConfig};

/// Applies a pseudo-random placement (seeded) to a workload and checks
/// equivalence of the transformed program.
fn random_placement_preserves(benchmark: &str, seed: u64, nclusters: usize) {
    let w = mcpart::workloads::by_name(benchmark).expect("known benchmark");
    let program = w.profile.apply_heap_sizes(&w.program);
    let machine = Machine::homogeneous(nclusters, 5);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut placement = Placement::all_on_cluster0(&program);
    for (fid, f) in program.functions.iter() {
        for oid in f.ops.keys() {
            placement.set_cluster(fid, oid, ClusterId::new(rng.gen_range(0..nclusters)));
        }
    }
    for home in placement.object_home.values_mut() {
        *home = Some(ClusterId::new(rng.gen_range(0..nclusters)));
    }
    let pts = PointsTo::compute(&program);
    let access = AccessInfo::compute(&program, &pts, &w.profile);
    let normalized = normalize_placement(&program, &placement, &access, &machine, &w.profile);
    let (moved, _pl, stats) = insert_moves(&program, &normalized, &machine);
    mcpart::ir::verify_program(&moved).expect("moved program verifies");
    assert!(stats.moves_inserted > 0, "random placement should need moves");
    assert!(
        semantically_equivalent(&program, &moved, &[], ExecConfig::default()).unwrap(),
        "{benchmark} seed {seed}: transformation changed semantics"
    );
}

#[test]
fn random_placements_preserve_rawcaudio() {
    for seed in 0..6u64 {
        random_placement_preserves("rawcaudio", seed * 131 + 17, 2);
    }
}

#[test]
fn random_placements_preserve_fir() {
    for seed in 0..6u64 {
        random_placement_preserves("fir", seed * 131 + 29, 2);
    }
}

#[test]
fn random_placements_preserve_fsed_four_clusters() {
    for seed in 0..6u64 {
        random_placement_preserves("fsed", seed * 131 + 43, 4);
    }
}

#[test]
fn uniform_profile_equivalence_on_small_benchmarks() {
    for name in ["latnrm", "matmul", "pegwit"] {
        random_placement_preserves(name, 0xFEED, 2);
    }
}

#[test]
fn moved_program_profile_matches_block_structure() {
    // Move insertion must not change control flow: re-running the
    // transformed program yields the same block frequencies for the
    // (identically-indexed) blocks.
    let w = mcpart::workloads::by_name("rawdaudio").unwrap();
    let program = w.profile.apply_heap_sizes(&w.program);
    let machine = Machine::paper_2cluster(5);
    let mut placement = Placement::all_on_cluster0(&program);
    // Push all stores' value computations around by placing every
    // second op on cluster 1.
    for (fid, f) in program.functions.iter() {
        for oid in f.ops.keys() {
            if oid.index() % 2 == 1 {
                placement.set_cluster(fid, oid, ClusterId::new(1));
            }
        }
    }
    let pts = PointsTo::compute(&program);
    let access = AccessInfo::compute(&program, &pts, &w.profile);
    let normalized = normalize_placement(&program, &placement, &access, &machine, &w.profile);
    let (moved, _, _) = insert_moves(&program, &normalized, &machine);
    let rerun = mcpart::sim::run(&moved, &[], ExecConfig::default()).unwrap();
    let orig = mcpart::sim::run(&program, &[], ExecConfig::default()).unwrap();
    for (fid, f) in program.functions.iter() {
        for bid in f.blocks.keys() {
            assert_eq!(
                orig.profile.block_freq(fid, bid),
                rerun.profile.block_freq(fid, bid),
                "block frequency changed for {fid}/{bid}"
            );
        }
    }
    let _ = Profile::uniform(&program, 1);
}
