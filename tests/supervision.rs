//! Acceptance tests for the crash-only supervision layer: panic
//! isolation with quarantine-and-retry, the degradation ladder under
//! injected method faults, and checkpoint/resume byte-identity after a
//! simulated (and a real) mid-run kill — at every `--jobs` count.

use mcpart::core::{run_pipeline, Method, PipelineConfig};
use mcpart::machine::Machine;
use std::io::Read;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mcpart"))
}

fn mcpart_cli(args: &[&str]) -> (String, String, Option<i32>) {
    let out = bin().args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("mcpart_supervision");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Acceptance: an injected panic in one function still yields a
/// completed run with that unit quarantined — exit 0 with
/// `--allow-quarantine`, exit 1 without it.
#[test]
fn injected_panic_quarantines_with_the_documented_exit_codes() {
    let (_, stderr, code) = mcpart_cli(&["run", "rawcaudio", "--inject-panic", "main"]);
    assert_eq!(code, Some(1), "quarantine without --allow-quarantine is a failure\n{stderr}");
    assert!(stderr.contains("quarantined `main`"), "no quarantine warning in `{stderr}`");
    assert!(stderr.contains("injected fault"), "no panic payload in `{stderr}`");

    let (stdout, stderr, code) = mcpart_cli(&[
        "run",
        "rawcaudio",
        "--inject-panic",
        "main",
        "--allow-quarantine",
        "--metrics",
    ]);
    assert_eq!(code, Some(0), "--allow-quarantine must exit 0\n{stderr}");
    assert!(stdout.contains("quarantine report: 1 unit(s)"), "no report in:\n{stdout}");
    assert!(stdout.contains("main (3 attempts)"), "attempt count missing in:\n{stdout}");
    // The run still completed: the quarantined function keeps the
    // cluster-0 fallback placement, so the report has real cycle counts.
    assert!(stdout.contains("cycles"), "run did not complete:\n{stdout}");
}

/// A panic that clears on retry must converge to the exact result of a
/// clean run: retry decisions are pure functions of (unit, attempt), so
/// the recovered placement, move insertion, and cycle counts are the
/// ones the clean run computes — only the retry counter records that
/// anything happened.
#[test]
fn retry_then_succeed_matches_a_clean_run() {
    let w = mcpart::workloads::by_name("rawcaudio").expect("known benchmark");
    let machine = Machine::paper_2cluster(5);
    let clean = run_pipeline(&w.program, &w.profile, &machine, &PipelineConfig::new(Method::Gdp))
        .expect("clean pipeline");
    let mut cfg = PipelineConfig::new(Method::Gdp);
    cfg.rhop.inject_panic = Some(mcpart::core::PanicPlan { func: "main".to_string(), panics: 1 });
    let retried = run_pipeline(&w.program, &w.profile, &machine, &cfg).expect("retry recovers");
    assert_eq!(retried.rhop_stats.retries, 1, "exactly one retry was injected");
    assert!(retried.quarantine().is_empty(), "a clearing panic must not quarantine");
    assert!(retried.downgrades.is_empty(), "a unit retry must not engage the method ladder");
    assert_eq!(clean.placement, retried.placement, "retry changed the placement");
    assert_eq!(clean.cycles(), retried.cycles());
    assert_eq!(clean.report.dynamic_moves, retried.report.dynamic_moves);

    // Same through the CLI: one retryable panic, exit 0, no quarantine.
    let (_, stderr, code) = mcpart_cli(&["run", "rawcaudio", "--inject-panic", "main:1"]);
    assert_eq!(code, Some(0), "retry did not recover: {stderr}");
    assert!(!stderr.contains("quarantined"), "one retryable panic must not quarantine: {stderr}");
}

/// Acceptance: a run killed mid-flight resumes via `--resume` to
/// byte-identical stdout (placements, downgrade records, metrics) and a
/// structurally identical checkpoint — at `--jobs 1` and `--jobs 4`.
/// The kill is simulated deterministically by truncating the finished
/// checkpoint to a prefix plus a half-written trailing record, which is
/// exactly the on-disk state SIGKILL leaves behind.
#[test]
fn truncated_checkpoint_resumes_byte_identical_at_every_jobs_count() {
    let clean = tmp("ck_resume_clean.json");
    std::fs::remove_file(&clean).ok();
    let (clean_out, stderr, code) =
        mcpart_cli(&["compare", "rawcaudio", "--checkpoint", clean.to_str().unwrap()]);
    assert_eq!(code, Some(0), "clean compare failed: {stderr}");
    let full = std::fs::read_to_string(&clean).expect("checkpoint written");
    let lines: Vec<&str> = full.lines().collect();
    assert!(lines.len() >= 3, "expected header + records, got:\n{full}");

    for jobs in ["1", "4"] {
        for keep in 1..lines.len() {
            let killed = tmp(&format!("ck_resume_killed_{jobs}_{keep}.json"));
            // Prefix of complete records plus an unterminated partial
            // line: the crash artifact `--resume` must tolerate.
            let mut partial = lines[..keep].join("\n");
            partial.push('\n');
            partial.push_str(&lines[keep][..lines[keep].len() / 2]);
            std::fs::write(&killed, partial).expect("write truncated checkpoint");

            let (stdout, stderr, code) = mcpart_cli(&[
                "compare",
                "rawcaudio",
                "--checkpoint",
                killed.to_str().unwrap(),
                "--resume",
                "--jobs",
                jobs,
            ]);
            assert_eq!(code, Some(0), "resume failed (jobs={jobs}, keep={keep}): {stderr}");
            assert!(
                stderr.contains("partial trailing record"),
                "crash artifact not reported (jobs={jobs}, keep={keep}): {stderr}"
            );
            assert_eq!(stdout, clean_out, "resumed stdout diverged (jobs={jobs}, keep={keep})");
            let (stdout, stderr, code) =
                mcpart_cli(&["checkpoint-diff", clean.to_str().unwrap(), killed.to_str().unwrap()]);
            assert_eq!(code, Some(0), "jobs={jobs}, keep={keep}: {stderr}");
            assert!(stdout.contains("checkpoints match"), "{stdout}");
            std::fs::remove_file(&killed).ok();
        }
    }
}

/// The same contract under a real SIGKILL: start a run, kill the
/// process hard, resume whatever checkpoint prefix survived. Timing
/// decides how many units the first process finished (possibly all of
/// them); either way the resumed run must complete and match the clean
/// checkpoint.
#[cfg(unix)]
#[test]
fn sigkilled_run_resumes_to_the_clean_result() {
    let clean = tmp("ck_sigkill_clean.json");
    let killed = tmp("ck_sigkill.json");
    for p in [&clean, &killed] {
        std::fs::remove_file(p).ok();
    }
    let (_, stderr, code) =
        mcpart_cli(&["compare", "rawcaudio", "--checkpoint", clean.to_str().unwrap()]);
    assert_eq!(code, Some(0), "clean compare failed: {stderr}");

    let mut child = bin()
        .args(["compare", "rawcaudio", "--checkpoint", killed.to_str().unwrap()])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn");
    // Let it make some progress, then kill without any chance to clean
    // up. SIGKILL (via Child::kill) is uncatchable, so whatever is on
    // disk is an honest crash artifact.
    std::thread::sleep(std::time::Duration::from_millis(30));
    child.kill().ok();
    let status = child.wait().expect("wait");
    if status.success() {
        // The run won the race; its checkpoint is already complete.
        // Truncate it so the resume below still has work to do.
        let full = std::fs::read_to_string(&killed).expect("checkpoint");
        let lines: Vec<&str> = full.lines().collect();
        std::fs::write(&killed, lines[..2.min(lines.len())].join("\n") + "\n").expect("truncate");
    } else if let Some(mut err) = child.stderr.take() {
        let mut s = String::new();
        err.read_to_string(&mut s).ok();
        assert!(!s.contains("panicked"), "killed process panicked first: {s}");
    }

    let (_, stderr, code) =
        mcpart_cli(&["compare", "rawcaudio", "--checkpoint", killed.to_str().unwrap(), "--resume"]);
    assert_eq!(code, Some(0), "resume after SIGKILL failed: {stderr}");
    let (stdout, stderr, code) =
        mcpart_cli(&["checkpoint-diff", clean.to_str().unwrap(), killed.to_str().unwrap()]);
    assert_eq!(code, Some(0), "resumed checkpoint diverged: {stderr}");
    assert!(stdout.contains("checkpoints match"), "{stdout}");
}

/// `--resume` without `--checkpoint` is a usage error (exit 2).
#[test]
fn resume_requires_a_checkpoint_path() {
    let (_, stderr, code) = mcpart_cli(&["compare", "rawcaudio", "--resume"]);
    assert_eq!(code, Some(2), "stderr: {stderr}");
    assert!(stderr.contains("--checkpoint"), "unhelpful diagnostic: {stderr}");
}

/// A checkpoint recorded under one configuration refuses to resume a
/// run with different options: the header pins workload, seed, and
/// machine configuration, and a mismatch is a config error (exit 2),
/// not silent wrong answers.
#[test]
fn resume_rejects_a_mismatched_header() {
    let ck = tmp("ck_mismatch.json");
    std::fs::remove_file(&ck).ok();
    let (_, stderr, code) =
        mcpart_cli(&["compare", "rawcaudio", "--checkpoint", ck.to_str().unwrap()]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    for extra in [["--latency", "9"], ["--clusters", "4"], ["--memory", "unified"]] {
        let mut args =
            vec!["compare", "rawcaudio", "--checkpoint", ck.to_str().unwrap(), "--resume"];
        args.extend_from_slice(&extra);
        let (_, stderr, code) = mcpart_cli(&args);
        assert_eq!(code, Some(2), "{extra:?} must be a config error: {stderr}");
        assert!(stderr.contains("mismatch"), "{extra:?}: {stderr}");
    }
    // And a different workload trips the program/hash check.
    let (_, stderr, code) =
        mcpart_cli(&["compare", "fir", "--checkpoint", ck.to_str().unwrap(), "--resume"]);
    assert_eq!(code, Some(2), "workload mismatch must be a config error: {stderr}");
    assert!(stderr.contains("mismatch"), "{stderr}");
}

/// Satellite: a unit whose GDP attempt panics twice walks the full
/// degradation ladder — requested GDP, final method Naive, with two
/// downgrade records whose reasons carry the panic payloads.
#[test]
fn ladder_under_retry_lands_on_naive_with_two_downgrades() {
    let w = mcpart::workloads::by_name("rawcaudio").expect("known benchmark");
    let machine = Machine::paper_2cluster(5);
    let mut cfg = PipelineConfig::new(Method::Gdp);
    cfg.fault_methods = vec![Method::Gdp, Method::ProfileMax];
    let run = run_pipeline(&w.program, &w.profile, &machine, &cfg).expect("ladder recovers");
    assert_eq!(run.requested_method, Method::Gdp);
    assert_eq!(run.method, Method::Naive);
    assert_eq!(run.downgrades.len(), 2, "{:?}", run.downgrades);
    assert_eq!(run.downgrades[0].from, Method::Gdp);
    assert_eq!(run.downgrades[0].to, Method::ProfileMax);
    assert_eq!(run.downgrades[1].from, Method::ProfileMax);
    assert_eq!(run.downgrades[1].to, Method::Naive);
    for d in &run.downgrades {
        assert!(d.reason.contains("injected fault"), "reason lost the payload: {}", d.reason);
        assert!(d.reason.contains("panic"), "reason does not name the panic: {}", d.reason);
    }
    assert!(run.cycles() > 0);
}

/// The retry budget is respected: with `retries = 0` the ladder is
/// disabled and the panic surfaces as a typed worker-panic error.
#[test]
fn zero_retries_turns_the_panic_into_a_typed_error() {
    let w = mcpart::workloads::by_name("rawcaudio").expect("known benchmark");
    let machine = Machine::paper_2cluster(5);
    let mut cfg = PipelineConfig::new(Method::Gdp).with_retries(0);
    cfg.fault_methods = vec![Method::Gdp];
    let e = run_pipeline(&w.program, &w.profile, &machine, &cfg)
        .expect_err("no retries means no ladder");
    assert_eq!(e.stage, mcpart::core::Stage::Supervision, "{e}");
    assert!(e.to_string().contains("injected fault"), "{e}");
}
