//! Smoke tests of the experiment harness: each figure regenerator runs
//! on a benchmark subset and reproduces the paper's qualitative claims.

use mcpart_bench::experiments;

fn subset() -> Vec<mcpart::workloads::Workload> {
    ["rawcaudio", "rawdaudio", "fir", "matmul"]
        .iter()
        .map(|n| mcpart::workloads::by_name(n).expect("known benchmark"))
        .collect()
}

#[test]
fn fig2_penalty_grows_with_latency() {
    let rows = experiments::fig2(&subset(), &[1, 10]);
    assert_eq!(rows.len(), 4);
    let avg = |i: usize| -> f64 {
        rows.iter().map(|r| r.increase_pct[i]).sum::<f64>() / rows.len() as f64
    };
    // Figure 2's claim: the naive placement's cycle increase is real
    // and does not vanish at high latencies.
    assert!(avg(1) > -2.0, "naive should cost cycles at 10cy: {:.2}%", avg(1));
    for r in &rows {
        for &pct in &r.increase_pct {
            assert!(pct > -20.0, "{}: naive dramatically beat unified ({pct:.1}%)", r.benchmark);
        }
    }
}

#[test]
fn fig7_everyone_close_to_unified_at_1_cycle() {
    let fig = experiments::fig7_8(&subset(), 1);
    // "with such a low latency penalty ... both methods perform well".
    assert!(fig.averages.0 > 0.85, "GDP @1cy: {:.3}", fig.averages.0);
    assert!(fig.averages.1 > 0.85, "PM @1cy: {:.3}", fig.averages.1);
}

#[test]
fn fig8_gdp_tracks_unified_at_5_cycles() {
    let fig = experiments::fig7_8(&subset(), 5);
    // Paper: GDP averages 95.6% at 5 cycles; allow a band.
    assert!(fig.averages.0 > 0.85, "GDP @5cy: {:.3}", fig.averages.0);
    // And GDP should not trail Profile Max meaningfully.
    assert!(
        fig.averages.0 > fig.averages.1 - 0.05,
        "GDP {:.3} vs PM {:.3}",
        fig.averages.0,
        fig.averages.1
    );
}

#[test]
fn fig9_exhaustive_brackets_the_methods() {
    let w = mcpart::workloads::by_name("rawcaudio").unwrap();
    let fig = experiments::fig9(&w, 12).expect("rawcaudio is enumerable");
    assert!(fig.points.len() >= 8, "expected a real search space");
    let best = fig.points.iter().map(|p| p.cycles).min().unwrap();
    let worst = fig.points.iter().map(|p| p.cycles).max().unwrap();
    assert!(worst > best, "placement must matter");
    // The methods' chosen mappings are inside the enumerated bracket.
    assert!(fig.gdp_point.cycles >= best && fig.gdp_point.cycles <= worst);
    assert!(fig.profile_max_point.cycles >= best && fig.profile_max_point.cycles <= worst);
    // GDP picks a good mapping: within 20% of the best found.
    assert!(
        fig.gdp_point.cycles as f64 <= best as f64 * 1.20,
        "GDP {} vs best {best}",
        fig.gdp_point.cycles
    );
}

#[test]
fn fig10_reports_move_traffic() {
    let rows = experiments::fig10(&subset());
    assert_eq!(rows.len(), 4);
    for r in &rows {
        assert!(r.gdp_pct.is_finite());
        assert!(r.profile_max_pct.is_finite());
    }
}

#[test]
fn compile_time_profile_max_costs_more() {
    let ws = subset();
    let rows = experiments::compile_time(&ws);
    let gdp: f64 = rows.iter().map(|r| r.gdp.as_secs_f64()).sum();
    let pm: f64 = rows.iter().map(|r| r.profile_max.as_secs_f64()).sum();
    // §4.5: Profile Max is roughly two detailed runs.
    assert!(pm > gdp * 1.2, "PM {pm:.4}s vs GDP {gdp:.4}s");
}

#[test]
fn balance_sweep_trades_balance_for_speed() {
    let w = mcpart::workloads::by_name("rawdaudio").unwrap();
    let points = experiments::ablation_balance(&w, &[0.05, 1.0]);
    assert_eq!(points.len(), 2);
    // Looser balance can only expand the search space: the loose run
    // must be at least as fast (same seeds, superset of mappings is not
    // literally guaranteed with heuristics — allow a small band).
    assert!(
        points[1].cycles as f64 <= points[0].cycles as f64 * 1.10,
        "loose {} vs tight {}",
        points[1].cycles,
        points[0].cycles
    );
    assert!(points[1].byte_skew >= 0.5 && points[1].byte_skew <= 1.0);
}
