//! Profile-guided move hoisting: semantics preservation and dynamic
//! transfer reduction.

use mcpart::ir::{ClusterId, Cmp, DataObject, FunctionBuilder, MemWidth, Profile, Program};
use mcpart::machine::Machine;
use mcpart::sched::{
    insert_moves, insert_moves_with, normalize_placement, MoveStrategy, Placement,
};

fn machine() -> Machine {
    Machine::paper_2cluster(5)
}

fn access_of(p: &Program) -> mcpart::analysis::AccessInfo {
    let pts = mcpart::analysis::PointsTo::compute(p);
    mcpart::analysis::AccessInfo::compute(p, &pts, &Profile::uniform(p, 1))
}

#[test]
fn hoisted_moves_preserve_semantics_in_loops() {
    // A value defined before a loop and consumed remotely inside it:
    // hoisting turns per-iteration transfers into a single one.
    let mut p = Program::new("t");
    let obj = p.add_object(DataObject::global("acc", 4));
    let mut b = FunctionBuilder::entry(&mut p);
    let x = b.iconst(7); // defined once, consumed in the loop on c1
    let i = b.iconst(0);
    let n = b.iconst(50);
    let head = b.block("head");
    let body = b.block("body");
    let exit = b.block("exit");
    b.jump(head);
    b.switch_to(head);
    let c = b.icmp(Cmp::Lt, i, n);
    b.branch(c, body, exit);
    b.switch_to(body);
    let a = b.addrof(obj);
    let cur = b.load(MemWidth::B4, a);
    let stepped = b.add(cur, x); // this add will live on cluster 1
    b.store(MemWidth::B4, a, stepped);
    let one = b.iconst(1);
    let ni = b.add(i, one);
    b.mov_to(i, ni);
    b.jump(head);
    b.switch_to(exit);
    let a2 = b.addrof(obj);
    let out = b.load(MemWidth::B4, a2);
    b.ret(Some(out));
    let f = p.entry;
    // Force the consuming add onto cluster 1; memory stays on 0.
    let add_id = p.functions[f].blocks[body].ops[2];
    let mut pl = Placement::all_on_cluster0(&p);
    pl.set_cluster(f, add_id, ClusterId::new(1));
    let profile = {
        let mut pr = Profile::uniform(&p, 1);
        pr.funcs[f].block_freq[body] = 50;
        pr.funcs[f].block_freq[head] = 51;
        pr
    };
    let m = machine();
    let norm = normalize_placement(&p, &pl, &access_of(&p), &m, &profile);
    let (plain, _, plain_stats) = insert_moves(&p, &norm, &m);
    let (hoisted, hoisted_pl, hoist_stats) =
        insert_moves_with(&p, &norm, &m, Some(&profile), MoveStrategy::ProfileHoisted);
    mcpart::ir::verify_program(&hoisted).unwrap();
    assert!(hoist_stats.moves_hoisted > 0, "{hoist_stats:?}");
    // Semantics unchanged under both strategies.
    assert!(mcpart::sim::semantically_equivalent(
        &p,
        &hoisted,
        &[],
        mcpart::sim::ExecConfig::default()
    )
    .unwrap());
    // Dynamic transfers: hoisted pays once (entry block), plain pays
    // per loop iteration.
    let plain_pl = {
        let (_, pl2, _) = insert_moves(&p, &norm, &m);
        pl2
    };
    let plain_dyn = mcpart::sim::dynamic_move_count(&plain, &plain_pl, &profile);
    let hoist_dyn = mcpart::sim::dynamic_move_count(&hoisted, &hoisted_pl, &profile);
    assert!(hoist_dyn < plain_dyn, "hoisted {hoist_dyn} should beat per-block {plain_dyn}");
    let _ = plain_stats;
}
